#include "server/server.h"

#include <arpa/inet.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <sys/socket.h>
#include <unistd.h>

#include <algorithm>
#include <cerrno>
#include <cstring>

namespace next700 {
namespace server {

namespace {

/// Resume reads once the in-flight count drops below this fraction of the
/// budget (hysteresis so the loop does not flap at the boundary).
uint32_t ResumeWatermark(uint32_t budget) { return budget - budget / 4; }

/// Per-replica shipping window: stop enqueuing batches once this many
/// bytes sit unsent in the connection's write buffer. A slow replica
/// backpressures through TCP instead of ballooning primary memory.
constexpr size_t kShipWindowBytes = 4 * kMaxReplBatchBytes;

/// Socket read buffer per connection (one outstanding read each).
constexpr size_t kReadBufBytes = 64 * 1024;

/// Completion routing: conn ids start at 1, so (id << 1 | tag) is always
/// >= 2 and the accept cookie below can never collide with it.
constexpr uint64_t kAcceptUd = 1;
uint64_t ReadUd(uint64_t conn_id) { return conn_id << 1; }
uint64_t WriteUd(uint64_t conn_id) { return (conn_id << 1) | 1; }

}  // namespace

Server::Server(Engine* engine, ServerOptions options)
    : engine_(engine), options_(std::move(options)) {
  NEXT700_CHECK(engine_ != nullptr);
  NEXT700_CHECK(options_.num_workers > 0);
  NEXT700_CHECK(options_.max_inflight > 0);
  NEXT700_CHECK_MSG(options_.num_workers <= engine_->options().max_threads,
                    "server needs one engine thread id per worker");
}

Server::~Server() { Stop(); }

Status Server::Start() {
  NEXT700_CHECK(!running_.load());
  // kUring fails loudly here on kernels without a usable ring; kAuto
  // quietly resolves to the batched-epoll fallback.
  NEXT700_RETURN_IF_ERROR(io::CreateIoBackend(options_.io_backend, &io_));

  listen_fd_ = ::socket(AF_INET, SOCK_STREAM | SOCK_NONBLOCK | SOCK_CLOEXEC,
                        0);
  if (listen_fd_ < 0) return Status::IOError("socket() failed");
  const int one = 1;
  ::setsockopt(listen_fd_, SOL_SOCKET, SO_REUSEADDR, &one, sizeof(one));

  sockaddr_in addr;
  std::memset(&addr, 0, sizeof(addr));
  addr.sin_family = AF_INET;
  addr.sin_port = htons(options_.port);
  if (::inet_pton(AF_INET, options_.host.c_str(), &addr.sin_addr) != 1) {
    return Status::InvalidArgument("bad listen address: " + options_.host);
  }
  if (::bind(listen_fd_, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) <
      0) {
    return Status::IOError("bind() failed: " + std::string(strerror(errno)));
  }
  if (::listen(listen_fd_, options_.listen_backlog) < 0) {
    return Status::IOError("listen() failed");
  }
  socklen_t addr_len = sizeof(addr);
  ::getsockname(listen_fd_, reinterpret_cast<sockaddr*>(&addr), &addr_len);
  bound_port_ = ntohs(addr.sin_port);

  // Queue-oriented dispatch for the partitioned composition: partition p is
  // served by worker (p mod workers), so single-partition transactions on
  // distinct partitions never contend on a queue or a partition lock. Other
  // schemes share one run queue.
  partitioned_dispatch_ = engine_->cc()->scheme() == CcScheme::kHstore;
  const int num_queues = partitioned_dispatch_ ? options_.num_workers : 1;
  for (int i = 0; i < num_queues; ++i) {
    queues_.push_back(std::make_unique<WorkQueue>());
  }

  if (engine_->log_manager() != nullptr) {
    // One durable callback serves two consumers: releasing held replies
    // (sync commit) and waking the loop to ship freshly durable bytes to
    // replicas. The flusher thread must not touch loop-owned connection
    // state, so shipping is signalled through a flag + the backend's
    // thread-safe Wakeup.
    const bool sync_commit = engine_->options().sync_commit;
    engine_->log_manager()->SetDurableCallback(
        [this, sync_commit](Lsn durable) {
          if (sync_commit) ReleaseDurable(ReleaseWatermark(durable));
          if (replica_count_.load(std::memory_order_acquire) > 0) {
            ship_pending_.store(true, std::memory_order_release);
            io_->Wakeup();
          }
        });
  }

  // Requests and Prepares stay fenced out until every in-doubt transaction
  // recovery surfaced is resolved by its coordinator.
  in_doubt_gate_ = engine_->has_in_doubt();

  stop_requested_.store(false);
  running_.store(true);
  for (int i = 0; i < options_.num_workers; ++i) {
    workers_.emplace_back([this, i] { WorkerLoop(i); });
  }
  loop_thread_ = std::thread([this] { EventLoop(); });
  return Status::OK();
}

void Server::Stop() {
  if (!running_.load()) return;
  if (engine_->log_manager() != nullptr) {
    // Returns only after any in-flight durable callback finished, so the
    // flusher can no longer call into this object.
    engine_->log_manager()->SetDurableCallback(nullptr);
  }
  stop_requested_.store(true);
  io_->Wakeup();
  loop_thread_.join();

  // Release workers parked on undecided prepared branches: they abort in
  // memory without logging an outcome, so the gtid stays in doubt on disk
  // and presumed abort resolves it on the next recovery.
  {
    MutexLock lock(&prepared_mu_);
    prepared_stop_ = true;
  }
  prepared_cv_.NotifyAll();

  for (auto& queue : queues_) {
    {
      MutexLock lock(&queue->mu);
      queue->stopped = true;
    }
    queue->cv.NotifyAll();
  }
  for (auto& worker : workers_) worker.join();
  workers_.clear();
  queues_.clear();

  for (auto& [id, conn] : connections_) {
    (void)id;
    ::close(conn->fd());
  }
  connections_.clear();
  dirty_.clear();
  ::close(listen_fd_);
  listen_fd_ = -1;
  // Last: workers called io_->Wakeup() through PushCompletion until the
  // join above, so the backend must outlive them.
  io_.reset();
  running_.store(false);
}

void Server::EventLoop() {
  // The loop thread owns the backend from here on (Submit*/Reap/CancelFd
  // are single-owner calls), which is why the accept is armed here and
  // not in Start().
  (void)io_->SubmitAccept(listen_fd_, kAcceptUd);
  constexpr int kMaxEvents = 64;
  io::IoEvent events[kMaxEvents];
  while (!stop_requested_.load(std::memory_order_acquire)) {
    const int n = io_->Reap(events, kMaxEvents, /*timeout_ms=*/-1);
    if (n < 0) break;
    for (int i = 0; i < n; ++i) {
      const io::IoEvent& event = events[i];
      switch (event.op) {
        case io::IoEvent::Op::kWakeup:
          DrainCompletions();
          if (ship_pending_.exchange(false, std::memory_order_acq_rel)) {
            ShipAll();
          }
          break;
        case io::IoEvent::Op::kAccept:
          // Transient accept errors surface as negative results; the
          // backend has already re-armed the accept either way.
          if (event.result >= 0) HandleAccept(event.result);
          break;
        case io::IoEvent::Op::kRead:
          HandleReadComplete(event.user_data >> 1, event.result);
          break;
        case io::IoEvent::Op::kWrite:
          HandleWriteComplete(event.user_data >> 1, event.result);
          break;
        case io::IoEvent::Op::kFsync:
          break;  // The network path never submits fsyncs.
      }
    }
    // Batch end: everything that became writable above goes out as one
    // writev per connection.
    FlushDirty();
  }
}

void Server::HandleAccept(int fd) {
  const int one = 1;
  ::setsockopt(fd, IPPROTO_TCP, TCP_NODELAY, &one, sizeof(one));
  const uint64_t id = next_conn_id_++;
  auto conn = std::make_unique<Connection>(fd, id);
  conn->set_read_paused(reads_paused_);
  Connection* raw = conn.get();
  connections_[id] = std::move(conn);
  stats_.connections_accepted.fetch_add(1, std::memory_order_relaxed);
  StartRead(raw);
}

void Server::StartRead(Connection* conn) {
  if (conn->read_inflight() || conn->read_paused() || conn->draining()) {
    return;
  }
  uint8_t* buf = conn->EnsureReadBuffer(kReadBufBytes);
  const Status submitted =
      io_->SubmitRead(conn->fd(), buf, conn->read_buf_len(),
                      ReadUd(conn->id()));
  if (!submitted.ok()) {
    CloseConnection(conn);
    return;
  }
  conn->set_read_inflight(true);
}

void Server::HandleReadComplete(uint64_t conn_id, int32_t result) {
  auto it = connections_.find(conn_id);
  if (it == connections_.end()) return;  // Closed with the read in flight.
  Connection* conn = it->second.get();
  conn->set_read_inflight(false);
  if (result == 0) {
    // Peer half-closed: finish buffered work, flush replies, then close.
    conn->set_draining();
    DrainFrames(conn);
    return;
  }
  if (result < 0) {
    if (result == -EAGAIN || result == -EINTR) {
      StartRead(conn);  // Spurious readiness or signal: re-arm.
      return;
    }
    CloseConnection(conn);
    return;
  }
  conn->decoder()->Feed(conn->read_buf(), static_cast<size_t>(result));
  DrainFrames(conn);  // May pause reads or close `conn`.
  auto again = connections_.find(conn_id);
  if (again == connections_.end()) return;
  StartRead(again->second.get());
}

void Server::DrainFrames(Connection* conn) {
  const uint64_t conn_id = conn->id();
  for (;;) {
    // The admission budget throttles client requests only; handshakes and
    // replica acks must keep flowing (acks release held replies).
    if (conn->handshaken() && conn->peer() == PeerRole::kClient &&
        inflight_.load(std::memory_order_relaxed) >= options_.max_inflight) {
      PauseReads();
      break;
    }
    Frame frame;
    bool have = false;
    const Status stream_ok = conn->decoder()->Next(&frame, &have);
    if (!stream_ok.ok()) {
      // Oversized or garbage header: the stream cannot be resynchronized.
      stats_.protocol_errors.fetch_add(1, std::memory_order_relaxed);
      stats_.connections_dropped.fetch_add(1, std::memory_order_relaxed);
      CloseConnection(conn);
      return;
    }
    if (!have) break;
    if (!conn->handshaken()) {
      if (!HandleHello(conn, frame)) return;
      if (connections_.find(conn_id) == connections_.end()) return;
      continue;
    }
    if (frame.type == FrameType::kReplAck &&
        conn->peer() == PeerRole::kReplica) {
      if (!HandleReplAck(conn, frame)) return;
      if (connections_.find(conn_id) == connections_.end()) return;
      continue;
    }
    if (conn->peer() == PeerRole::kCoordinator &&
        frame.type != FrameType::kRequest) {
      if (!HandleCoordinatorFrame(conn, frame)) return;
      if (connections_.find(conn_id) == connections_.end()) return;
      continue;
    }
    if (frame.type != FrameType::kRequest ||
        (conn->peer() != PeerRole::kClient &&
         conn->peer() != PeerRole::kCoordinator)) {
      stats_.protocol_errors.fetch_add(1, std::memory_order_relaxed);
      stats_.connections_dropped.fetch_add(1, std::memory_order_relaxed);
      CloseConnection(conn);
      return;
    }
    Request request;
    const Status decoded = DecodeRequest(frame.body, frame.body_len, &request);
    if (!decoded.ok()) {
      // Framing is intact, so the connection survives; answer with an error.
      stats_.protocol_errors.fetch_add(1, std::memory_order_relaxed);
      const uint64_t seq = conn->AdmitRequest();
      Response response;
      response.request_id = request.request_id;
      response.status = StatusCode::kInvalidArgument;
      CompleteInline(conn, seq, response);
      if (connections_.find(conn_id) == connections_.end()) return;
      continue;
    }
    DispatchRequest(conn, std::move(request));
    if (connections_.find(conn_id) == connections_.end()) return;
  }
  MaybeCloseDrained(conn);
}

bool Server::HandleHello(Connection* conn, const Frame& frame) {
  Hello hello;
  Status status = frame.type == FrameType::kHello
                      ? DecodeHello(frame.body, frame.body_len, &hello)
                      : Status::InvalidArgument(
                            "first frame on a connection must be Hello");
  if (status.ok() && hello.role == PeerRole::kReplica) {
    if (engine_->log_manager() == nullptr) {
      status = Status::InvalidArgument(
          "replica subscription refused: primary runs without a log");
    } else if (options_.snapshot_source != nullptr) {
      status = Status::InvalidArgument(
          "replica subscription refused: replicas do not chain");
    }
  }
  if (!status.ok()) {
    // Loud rejection of mixed-version or non-next700 peers: drop the
    // connection before interpreting a single byte of their payloads.
    stats_.protocol_errors.fetch_add(1, std::memory_order_relaxed);
    stats_.connections_dropped.fetch_add(1, std::memory_order_relaxed);
    CloseConnection(conn);
    return false;
  }
  conn->set_handshaken();
  conn->set_peer(hello.role);
  std::vector<uint8_t> ack;
  EncodeHelloAck(HelloAck{}, &ack);
  conn->EnqueueRaw(ack.data(), ack.size());
  FlushConnection(conn);  // May close `conn`; callers re-find by id.
  return true;
}

bool Server::HandleReplAck(Connection* conn, const Frame& frame) {
  ReplAck ack;
  const Status decoded = DecodeReplAck(frame.body, frame.body_len, &ack);
  if (!decoded.ok()) {
    stats_.protocol_errors.fetch_add(1, std::memory_order_relaxed);
    stats_.connections_dropped.fetch_add(1, std::memory_order_relaxed);
    CloseConnection(conn);
    return false;
  }
  stats_.repl_acks_received.fetch_add(1, std::memory_order_relaxed);
  if (conn->shipper() == nullptr) {
    // First ack = subscription: durable_lsn names the replica's local log
    // end, which is where shipping resumes (frame boundary by contract).
    conn->set_shipper(std::make_unique<repl::LogShipper>(
        engine_->log_manager(), ack.durable_lsn));
    replica_count_.fetch_add(1, std::memory_order_release);
  } else {
    conn->shipper()->RecordAck(ack.durable_lsn, ack.applied_lsn);
  }
  if (options_.repl_ack == ReplAckMode::kSemisync) {
    RecomputeSemisyncWatermark();
    ReleaseDurable(ReleaseWatermark(engine_->log_manager()->durable_lsn()));
  }
  ShipToReplica(conn);  // May close `conn`; callers re-find by id.
  return true;
}

void Server::ShipToReplica(Connection* conn) {
  repl::LogShipper* shipper = conn->shipper();
  if (shipper == nullptr) return;
  bool enqueued = false;
  while (conn->write_len() < kShipWindowBytes) {
    std::vector<uint8_t> encoded;
    bool have = false;
    const Status status = shipper->NextBatch(&encoded, &have);
    if (!status.ok()) {
      // kNotFound: the cursor fell below the retired log prefix; the
      // replica cannot catch up by tailing and must re-bootstrap from a
      // checkpoint. Dropping the subscription makes that loud.
      stats_.connections_dropped.fetch_add(1, std::memory_order_relaxed);
      CloseConnection(conn);
      return;
    }
    if (!have) break;
    conn->EnqueueRaw(encoded.data(), encoded.size());
    stats_.repl_batches_shipped.fetch_add(1, std::memory_order_relaxed);
    enqueued = true;
  }
  if (enqueued) FlushConnection(conn);
}

void Server::ShipAll() {
  std::vector<uint64_t> ids;
  ids.reserve(connections_.size());
  for (auto& [id, conn] : connections_) {
    if (conn->shipper() != nullptr) ids.push_back(id);
  }
  for (uint64_t id : ids) {
    auto it = connections_.find(id);
    if (it == connections_.end()) continue;
    ShipToReplica(it->second.get());
  }
}

void Server::RecomputeSemisyncWatermark() {
  Lsn max_acked = 0;
  for (auto& [id, conn] : connections_) {
    (void)id;
    if (conn->shipper() != nullptr) {
      max_acked = std::max(max_acked, conn->shipper()->acked_durable());
    }
  }
  semisync_watermark_.store(max_acked, std::memory_order_release);
}

Lsn Server::ReleaseWatermark(Lsn durable) const {
  if (options_.repl_ack != ReplAckMode::kSemisync) return durable;
  if (replica_count_.load(std::memory_order_acquire) == 0) {
    return durable;  // Degraded: no replica can ever ack.
  }
  return std::min(durable,
                  semisync_watermark_.load(std::memory_order_acquire));
}

bool Server::HandleCoordinatorFrame(Connection* conn, const Frame& frame) {
  switch (frame.type) {
    case FrameType::kPrepare:
      return HandlePrepare(conn, frame);
    case FrameType::kCommitDecision:
    case FrameType::kAbortDecision:
      return HandleDecision(conn, frame);
    case FrameType::kInDoubtQuery:
      return HandleInDoubtQuery(conn, frame);
    default:
      stats_.protocol_errors.fetch_add(1, std::memory_order_relaxed);
      stats_.connections_dropped.fetch_add(1, std::memory_order_relaxed);
      CloseConnection(conn);
      return false;
  }
}

bool Server::HandlePrepare(Connection* conn, const Frame& frame) {
  Prepare prepare;
  const Status decoded = DecodePrepare(frame.body, frame.body_len, &prepare);
  if (!decoded.ok()) {
    // The coordinator is trusted infrastructure; a malformed Prepare means
    // a version skew or corruption, not a user error worth a polite reply.
    stats_.protocol_errors.fetch_add(1, std::memory_order_relaxed);
    stats_.connections_dropped.fetch_add(1, std::memory_order_relaxed);
    CloseConnection(conn);
    return false;
  }
  const uint64_t seq = conn->AdmitRequest();
  const auto vote_inline = [&](StatusCode code) {
    Vote vote;
    vote.gtid = prepare.gtid;
    vote.status = code;
    std::vector<uint8_t> encoded;
    EncodeVote(vote, &encoded);
    conn->Complete(seq, std::move(encoded));
    FlushConnection(conn);  // May close `conn`; callers re-find by id.
  };
  if (in_doubt_gate_) {
    if (engine_->has_in_doubt()) {
      vote_inline(StatusCode::kUnavailable);
      return true;
    }
    in_doubt_gate_ = false;
  }
  if (engine_->GetProcedure(prepare.proc_id) == nullptr) {
    vote_inline(StatusCode::kNotFound);
    return true;
  }
  if (options_.snapshot_source != nullptr) {
    vote_inline(StatusCode::kInvalidArgument);  // Replicas never prepare.
    return true;
  }
  const uint32_t num_partitions = engine_->options().num_partitions;
  for (uint32_t p : prepare.partitions) {
    if (p >= num_partitions) {
      vote_inline(StatusCode::kInvalidArgument);
      return true;
    }
  }
  WorkQueue* queue =
      queues_[static_cast<size_t>(WorkerForPartitions(prepare.partitions))]
          .get();
  inflight_.fetch_add(1, std::memory_order_relaxed);
  bool rejected = false;
  StatusCode reject_code = StatusCode::kOk;
  {
    MutexLock lock(&queue->mu);
    if (queue->stopped) {
      rejected = true;
      reject_code = StatusCode::kUnavailable;
    } else if (queue->items.size() >= options_.queue_capacity) {
      rejected = true;
      reject_code = StatusCode::kResourceExhausted;
    } else {
      WorkItem item;
      item.conn_id = conn->id();
      item.seq = seq;
      item.is_prepare = true;
      item.prepare = std::move(prepare);
      queue->items.push_back(std::move(item));
    }
  }
  if (rejected) {
    inflight_.fetch_sub(1, std::memory_order_relaxed);
    if (reject_code == StatusCode::kResourceExhausted) {
      stats_.admission_rejects.fetch_add(1, std::memory_order_relaxed);
    }
    vote_inline(reject_code);
    return true;
  }
  stats_.prepares_dispatched.fetch_add(1, std::memory_order_relaxed);
  queue->cv.NotifyOne();
  return true;
}

bool Server::HandleDecision(Connection* conn, const Frame& frame) {
  Decision decision;
  const Status decoded =
      DecodeDecision(frame.body, frame.body_len, &decision);
  if (!decoded.ok()) {
    stats_.protocol_errors.fetch_add(1, std::memory_order_relaxed);
    stats_.connections_dropped.fetch_add(1, std::memory_order_relaxed);
    CloseConnection(conn);
    return false;
  }
  stats_.decisions_received.fetch_add(1, std::memory_order_relaxed);
  const bool commit = frame.type == FrameType::kCommitDecision;
  const uint64_t seq = conn->AdmitRequest();
  // A live prepared branch: hand the decision to its parked worker, which
  // applies it and pushes the DecisionAck for this (conn, seq).
  bool delivered = false;
  {
    MutexLock lock(&prepared_mu_);
    auto it = prepared_.find(decision.gtid);
    if (it != prepared_.end() && !it->second.decided) {
      it->second.decided = true;
      it->second.commit = commit;
      it->second.decision_conn_id = conn->id();
      it->second.decision_seq = seq;
      delivered = true;
    }
  }
  if (delivered) {
    inflight_.fetch_add(1, std::memory_order_relaxed);
    prepared_cv_.NotifyAll();
    return true;
  }
  // A branch recovery left in doubt resolves here; an unknown gtid is an
  // idempotent redelivery (the previous ack was lost) and acks OK.
  DecisionAck ack;
  ack.gtid = decision.gtid;
  ack.status = StatusCode::kOk;
  const Status resolved = engine_->ResolveInDoubt(decision.gtid, commit);
  if (!resolved.ok() && !resolved.IsNotFound()) {
    ack.status = resolved.code();
  }
  std::vector<uint8_t> encoded;
  EncodeDecisionAck(ack, &encoded);
  conn->Complete(seq, std::move(encoded));
  FlushConnection(conn);
  return true;
}

bool Server::HandleInDoubtQuery(Connection* conn, const Frame& frame) {
  if (frame.body_len != 0) {
    stats_.protocol_errors.fetch_add(1, std::memory_order_relaxed);
    stats_.connections_dropped.fetch_add(1, std::memory_order_relaxed);
    CloseConnection(conn);
    return false;
  }
  const uint64_t seq = conn->AdmitRequest();
  InDoubtList list;
  // Both branches recovery left in doubt and live prepared branches whose
  // decision never arrived (their coordinator crashed before deciding):
  // the reconnecting coordinator answers every one of these with a
  // decision frame.
  list.gtids = engine_->InDoubtGtids();
  {
    MutexLock lock(&prepared_mu_);
    for (const auto& entry : prepared_) {
      if (!entry.second.decided) list.gtids.push_back(entry.first);
    }
  }
  std::vector<uint8_t> encoded;
  EncodeInDoubtList(list, &encoded);
  conn->Complete(seq, std::move(encoded));
  FlushConnection(conn);
  return true;
}

void Server::DispatchRequest(Connection* conn, Request request) {
  const uint64_t seq = conn->AdmitRequest();
  Response error;
  error.request_id = request.request_id;
  if (in_doubt_gate_) {
    if (engine_->has_in_doubt()) {
      // Recovered in-doubt redo applies outside concurrency control, so no
      // transaction may run until the coordinator has resolved every gtid.
      error.status = StatusCode::kUnavailable;
      CompleteInline(conn, seq, error);
      return;
    }
    in_doubt_gate_ = false;  // Resolved; stop checking per request.
  }
  if (engine_->GetProcedure(request.proc_id) == nullptr) {
    error.status = StatusCode::kNotFound;
    CompleteInline(conn, seq, error);
    return;
  }
  if (options_.snapshot_source != nullptr) {
    // Replica role: only read-only procedures, and only if the applied
    // snapshot is at least as fresh as the client demands.
    if (!engine_->IsProcedureReadOnly(request.proc_id)) {
      stats_.snapshot_rejects.fetch_add(1, std::memory_order_relaxed);
      error.status = StatusCode::kInvalidArgument;
      CompleteInline(conn, seq, error);
      return;
    }
    if (request.min_read_lsn > options_.snapshot_source->applied_lsn()) {
      stats_.snapshot_rejects.fetch_add(1, std::memory_order_relaxed);
      error.status = StatusCode::kUnavailable;
      CompleteInline(conn, seq, error);
      return;
    }
  }
  const uint32_t num_partitions = engine_->options().num_partitions;
  for (uint32_t p : request.partitions) {
    if (p >= num_partitions) {
      error.status = StatusCode::kInvalidArgument;
      CompleteInline(conn, seq, error);
      return;
    }
  }
  WorkQueue* queue = queues_[static_cast<size_t>(WorkerFor(request))].get();
  inflight_.fetch_add(1, std::memory_order_relaxed);
  bool rejected = false;
  {
    MutexLock lock(&queue->mu);
    if (queue->stopped) {
      rejected = true;
      error.status = StatusCode::kUnavailable;
    } else if (queue->items.size() >= options_.queue_capacity) {
      // Admission control: the queue is the last bounded stage; shedding
      // load here keeps overload from turning into unbounded memory growth.
      rejected = true;
      error.status = StatusCode::kResourceExhausted;
    } else {
      WorkItem item;
      item.conn_id = conn->id();
      item.seq = seq;
      item.request = std::move(request);
      queue->items.push_back(std::move(item));
    }
  }
  if (rejected) {
    inflight_.fetch_sub(1, std::memory_order_relaxed);
    if (error.status == StatusCode::kResourceExhausted) {
      stats_.admission_rejects.fetch_add(1, std::memory_order_relaxed);
    }
    CompleteInline(conn, seq, error);
    return;
  }
  stats_.requests_dispatched.fetch_add(1, std::memory_order_relaxed);
  queue->cv.NotifyOne();
}

int Server::WorkerFor(const Request& request) {
  return WorkerForPartitions(request.partitions);
}

int Server::WorkerForPartitions(const std::vector<uint32_t>& partitions) {
  if (!partitioned_dispatch_) return 0;  // Single shared run queue.
  if (partitions.empty()) {
    // Undeclared access locks every partition; spread those across workers.
    return static_cast<int>(round_robin_++ %
                            static_cast<uint64_t>(options_.num_workers));
  }
  const uint32_t min_partition =
      *std::min_element(partitions.begin(), partitions.end());
  return static_cast<int>(min_partition %
                          static_cast<uint32_t>(options_.num_workers));
}

void Server::CompleteInline(Connection* conn, uint64_t seq,
                            const Response& response) {
  std::vector<uint8_t> encoded;
  EncodeResponse(response, &encoded);
  conn->Complete(seq, std::move(encoded));
  FlushConnection(conn);
}

void Server::FlushConnection(Connection* conn) {
  const size_t released = conn->FlushOrdered();
  stats_.responses_sent.fetch_add(released, std::memory_order_relaxed);
  if (conn->has_pending_writes() && !conn->write_inflight()) {
    MarkDirty(conn);
  }
  MaybeCloseDrained(conn);
}

void Server::MarkDirty(Connection* conn) {
  if (conn->flush_pending()) return;
  conn->set_flush_pending(true);
  dirty_.push_back(conn->id());
}

void Server::FlushDirty() {
  // Swap first: StartWrite may close connections while iterating.
  std::vector<uint64_t> dirty;
  dirty.swap(dirty_);
  for (uint64_t id : dirty) {
    auto it = connections_.find(id);
    if (it == connections_.end()) continue;  // Closed earlier this batch.
    Connection* conn = it->second.get();
    conn->set_flush_pending(false);
    if (!conn->write_inflight() && conn->has_pending_writes()) {
      StartWrite(conn);
    }
  }
}

void Server::StartWrite(Connection* conn) {
  const int iovcnt = conn->BuildIovec(conn->iov());
  if (iovcnt == 0) return;
  const Status submitted =
      io_->SubmitWritev(conn->fd(), conn->iov(), iovcnt,
                        WriteUd(conn->id()));
  if (!submitted.ok()) {
    CloseConnection(conn);
    return;
  }
  conn->set_write_inflight(true);
  stats_.writev_batches.fetch_add(1, std::memory_order_relaxed);
  stats_.frames_batched.fetch_add(static_cast<uint64_t>(iovcnt),
                                  std::memory_order_relaxed);
}

void Server::HandleWriteComplete(uint64_t conn_id, int32_t result) {
  auto it = connections_.find(conn_id);
  if (it == connections_.end()) return;  // Closed with the write in flight.
  Connection* conn = it->second.get();
  conn->set_write_inflight(false);
  if (result < 0) {
    if (result == -EAGAIN || result == -EINTR) {
      StartWrite(conn);  // Spurious readiness or signal: resubmit as-is.
      return;
    }
    CloseConnection(conn);
    return;
  }
  conn->ConsumeWritten(static_cast<size_t>(result));
  if (conn->has_pending_writes()) {
    // Partial writev (socket buffer filled mid-gather, or more frames than
    // kMaxIov): resume from the first unsent byte.
    StartWrite(conn);
    return;
  }
  if (conn->shipper() != nullptr) {
    // A drained replica socket reopens the shipping window.
    ShipToReplica(conn);
    if (connections_.find(conn_id) == connections_.end()) return;
  }
  MaybeCloseDrained(conn);
}

bool Server::MaybeCloseDrained(Connection* conn) {
  if (conn->draining() && conn->pending_responses() == 0 &&
      !conn->has_pending_writes() && !conn->write_inflight() &&
      conn->decoder()->buffered_bytes() == 0) {
    CloseConnection(conn);
    return true;
  }
  return false;
}

void Server::CloseConnection(Connection* conn) {
  const bool was_subscribed_replica = conn->shipper() != nullptr;
  // Drop the connection's pending ops from the backend before close: the
  // fd number may be reused by the very next accept, and the read buffer
  // dies with the connection below.
  io_->CancelFd(conn->fd());
  ::close(conn->fd());
  connections_.erase(conn->id());  // Frees `conn`.
  if (was_subscribed_replica) {
    const uint32_t remaining =
        replica_count_.fetch_sub(1, std::memory_order_acq_rel) - 1;
    if (options_.repl_ack == ReplAckMode::kSemisync) {
      RecomputeSemisyncWatermark();
      if (remaining == 0) {
        // Losing the last replica degrades semisync to local durability;
        // otherwise every held reply would wait forever.
        stats_.semisync_degraded.fetch_add(1, std::memory_order_relaxed);
      }
      if (engine_->log_manager() != nullptr) {
        ReleaseDurable(
            ReleaseWatermark(engine_->log_manager()->durable_lsn()));
      }
    }
  }
}

void Server::PushCompletion(Completion completion) {
  {
    MutexLock lock(&completions_mu_);
    completions_.push_back(std::move(completion));
  }
  io_->Wakeup();
}

void Server::ReleaseDurable(Lsn durable) {
  bool released = false;
  {
    MutexLock held_lock(&held_mu_);
    MutexLock comp_lock(&completions_mu_);
    while (!held_replies_.empty() && held_replies_.top().lsn <= durable) {
      completions_.push_back(
          std::move(const_cast<HeldReply&>(held_replies_.top()).completion));
      held_replies_.pop();
      released = true;
    }
  }
  if (released) io_->Wakeup();
}

void Server::DrainCompletions() {
  for (;;) {
    std::deque<Completion> local;
    {
      MutexLock lock(&completions_mu_);
      local.swap(completions_);
    }
    if (local.empty()) break;
    for (auto& completion : local) {
      inflight_.fetch_sub(1, std::memory_order_relaxed);
      auto it = connections_.find(completion.conn_id);
      if (it == connections_.end()) continue;  // Client already gone.
      Connection* conn = it->second.get();
      conn->Complete(completion.seq, std::move(completion.encoded));
      FlushConnection(conn);  // May close `conn`.
    }
  }
  if (reads_paused_ && inflight_.load(std::memory_order_relaxed) <
                           ResumeWatermark(options_.max_inflight)) {
    ResumeReads();
  }
}

void Server::PauseReads() {
  if (reads_paused_) return;
  reads_paused_ = true;
  // No read is cancelled: outstanding ones complete and simply do not
  // resubmit while paused. Replica connections stay readable: their acks
  // release held semisync replies, which is exactly what drains the
  // budget. Coordinator connections likewise: their decision frames are
  // what un-parks prepared workers.
  for (auto& [id, conn] : connections_) {
    (void)id;
    if (conn->peer() != PeerRole::kReplica &&
        conn->peer() != PeerRole::kCoordinator) {
      conn->set_read_paused(true);
    }
  }
}

void Server::ResumeReads() {
  reads_paused_ = false;
  std::vector<uint64_t> ids;
  ids.reserve(connections_.size());
  for (auto& [id, conn] : connections_) {
    (void)conn;
    ids.push_back(id);
  }
  for (uint64_t id : ids) {
    auto it = connections_.find(id);
    if (it == connections_.end()) continue;
    Connection* conn = it->second.get();
    conn->set_read_paused(false);
    // Frames decoded before the pause may still be buffered; re-admit them
    // now (this may re-pause, in which case stop).
    DrainFrames(conn);
    auto again = connections_.find(id);
    if (again != connections_.end()) StartRead(again->second.get());
    if (reads_paused_) break;
  }
}

void Server::WorkerLoop(int worker_id) {
  WorkQueue* queue =
      queues_[partitioned_dispatch_ ? static_cast<size_t>(worker_id) : 0]
          .get();
  LogManager* log = engine_->log_manager();
  SnapshotSource* snapshot = options_.snapshot_source;
  for (;;) {
    WorkItem item;
    {
      MutexLock lock(&queue->mu);
      while (!queue->stopped && queue->items.empty()) {
        queue->cv.Wait(&queue->mu);
      }
      if (queue->stopped) return;  // Remaining replies are dropped at Stop.
      item = std::move(queue->items.front());
      queue->items.pop_front();
    }
    if (item.is_prepare) {
      RunPrepare(worker_id, &item);
      continue;
    }
    Engine::DeferredResult result;
    Lsn snapshot_lsn = 0;
    if (snapshot != nullptr) {
      // Replica role: exclude the applier's raw writes for the duration of
      // the (read-only) procedure; the snapshot LSN reported to the client
      // is the applied prefix the read actually observed.
      snapshot->ReadLock();
      result = engine_->RunProcedureDeferred(
          item.request.proc_id, worker_id, item.request.args.data(),
          item.request.args.size(), item.request.partitions);
      snapshot_lsn = snapshot->applied_lsn();
      snapshot->ReadUnlock();
    } else {
      result = engine_->RunProcedureDeferred(
          item.request.proc_id, worker_id, item.request.args.data(),
          item.request.args.size(), item.request.partitions);
    }
    Response response;
    response.request_id = item.request.request_id;
    response.status = result.status.code();
    response.commit_lsn = snapshot != nullptr ? snapshot_lsn
                                              : result.commit_lsn;
    response.payload = std::move(result.reply);
    Completion completion;
    completion.conn_id = item.conn_id;
    completion.seq = item.seq;
    EncodeResponse(response, &completion.encoded);

    if (result.commit_lsn > 0 && log != nullptr) {
      // Group-commit-aware reply release: hold the response until the
      // release watermark (local durability, plus a replica ack in
      // semisync mode) reaches the commit LSN, so the client never
      // observes a commit that could still be lost. The re-check after
      // insertion closes the race with a flush/ack that landed in between.
      bool held = false;
      {
        MutexLock lock(&held_mu_);
        if (ReleaseWatermark(log->durable_lsn()) < result.commit_lsn) {
          held_replies_.push(HeldReply{result.commit_lsn,
                                       std::move(completion)});
          held = true;
        }
      }
      if (held) {
        stats_.replies_held_durable.fetch_add(1, std::memory_order_relaxed);
        ReleaseDurable(ReleaseWatermark(log->durable_lsn()));
      } else {
        PushCompletion(std::move(completion));
      }
    } else {
      PushCompletion(std::move(completion));
    }
  }
}

void Server::RunPrepare(int worker_id, WorkItem* item) {
  LogManager* log = engine_->log_manager();
  const Prepare& prepare = item->prepare;
  const Procedure* proc = engine_->GetProcedure(prepare.proc_id);
  NEXT700_CHECK(proc != nullptr);  // Checked at dispatch.
  const std::vector<uint32_t> partitions(prepare.partitions.begin(),
                                         prepare.partitions.end());
  TxnContext* txn = engine_->Begin(worker_id, partitions);
  // The outcome record's durability gates the DecisionAck through the
  // held-replies path, not a blocking wait on this worker.
  txn->set_defer_durable(true);
  txn->SetProcedure(prepare.proc_id, prepare.args.data(),
                    prepare.args.size());
  Status s =
      (*proc)(engine_, txn, prepare.args.data(), prepare.args.size());
  if (s.ok()) s = engine_->Prepare(txn, prepare.gtid);
  Vote vote;
  vote.gtid = prepare.gtid;
  vote.status = s.code();
  vote.prepare_lsn = txn->prepare_lsn();
  if (!s.ok()) {
    if (s.IsAborted()) {
      engine_->Abort(txn);
    } else {
      engine_->AbortUser(txn);
    }
    Completion no;
    no.conn_id = item->conn_id;
    no.seq = item->seq;
    EncodeVote(vote, &no.encoded);
    PushCompletion(std::move(no));
    return;
  }
  // Register before the vote leaves: the decision can arrive the moment
  // the coordinator counts the last yes.
  {
    MutexLock lock(&prepared_mu_);
    prepared_.emplace(prepare.gtid, PreparedTxn{});
  }
  if (options_.crash_after_prepares > 0 &&
      prepares_done_.fetch_add(1, std::memory_order_relaxed) + 1 ==
          options_.crash_after_prepares) {
    // Crash-harness hook: die exactly in doubt — the prepare record is
    // durable but the vote never leaves this process.
    _exit(42);
  }
  Completion yes;
  yes.conn_id = item->conn_id;
  yes.seq = item->seq;
  EncodeVote(vote, &yes.encoded);
  // Engine::Prepare already waited for durability ("prepare durable before
  // vote"), so the vote bypasses the held-replies machinery.
  PushCompletion(std::move(yes));

  // Park holding the branch's locks until the coordinator decides (or
  // Stop): a participant never unilaterally aborts after voting yes.
  bool do_commit = false;
  bool stopped = false;
  uint64_t ack_conn_id = 0;
  uint64_t ack_seq = 0;
  {
    MutexLock lock(&prepared_mu_);
    auto it = prepared_.find(prepare.gtid);
    NEXT700_CHECK(it != prepared_.end());
    while (!it->second.decided && !prepared_stop_) {
      prepared_cv_.Wait(&prepared_mu_);
    }
    if (it->second.decided) {
      do_commit = it->second.commit;
      ack_conn_id = it->second.decision_conn_id;
      ack_seq = it->second.decision_seq;
    } else {
      stopped = true;
    }
    prepared_.erase(it);
  }
  if (stopped) {
    // In-memory rollback only — no outcome record — so the branch stays in
    // doubt on disk and presumed abort resolves it at the next recovery.
    engine_->Abort(txn);
    return;
  }
  DecisionAck ack;
  ack.gtid = prepare.gtid;
  ack.status = StatusCode::kOk;
  if (do_commit) {
    const Status cs = engine_->CommitPrepared(txn);
    if (!cs.ok()) ack.status = cs.code();
  } else {
    engine_->AbortPrepared(txn);
  }
  Completion completion;
  completion.conn_id = ack_conn_id;
  completion.seq = ack_seq;
  EncodeDecisionAck(ack, &completion.encoded);
  const Lsn outcome_lsn =
      do_commit && ack.status == StatusCode::kOk ? txn->commit_lsn() : 0;
  if (outcome_lsn > 0 && log != nullptr && engine_->options().sync_commit) {
    // Decision durable before ack: the commit outcome record must be on
    // disk before the coordinator may forget the transaction.
    bool held = false;
    {
      MutexLock lock(&held_mu_);
      if (ReleaseWatermark(log->durable_lsn()) < outcome_lsn) {
        held_replies_.push(HeldReply{outcome_lsn, std::move(completion)});
        held = true;
      }
    }
    if (held) {
      stats_.replies_held_durable.fetch_add(1, std::memory_order_relaxed);
      ReleaseDurable(ReleaseWatermark(log->durable_lsn()));
    } else {
      PushCompletion(std::move(completion));
    }
  } else {
    PushCompletion(std::move(completion));
  }
}

}  // namespace server
}  // namespace next700
