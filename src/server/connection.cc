#include "server/connection.h"

namespace next700 {
namespace server {

uint64_t Connection::AdmitRequest() {
  const uint64_t seq = next_seq_++;
  order_.push_back(seq);
  return seq;
}

void Connection::Complete(uint64_t seq,
                          std::vector<uint8_t> encoded_response) {
  completed_.emplace(seq, std::move(encoded_response));
}

size_t Connection::FlushOrdered() {
  size_t released = 0;
  while (!order_.empty()) {
    auto it = completed_.find(order_.front());
    if (it == completed_.end()) break;
    out_bytes_ += it->second.size();
    out_q_.push_back(std::move(it->second));
    completed_.erase(it);
    order_.pop_front();
    ++released;
  }
  return released;
}

void Connection::EnqueueRaw(const uint8_t* data, size_t len) {
  if (len == 0) return;
  out_bytes_ += len;
  out_q_.emplace_back(data, data + len);
}

int Connection::BuildIovec(struct iovec* iov) const {
  int count = 0;
  size_t off = front_off_;
  for (const auto& frame : out_q_) {
    if (count == kMaxIov) break;
    iov[count].iov_base =
        const_cast<uint8_t*>(frame.data()) + off;
    iov[count].iov_len = frame.size() - off;
    ++count;
    off = 0;
  }
  return count;
}

void Connection::ConsumeWritten(size_t n) {
  out_bytes_ -= n;
  while (n > 0) {
    std::vector<uint8_t>& front = out_q_.front();
    const size_t remaining = front.size() - front_off_;
    if (n < remaining) {
      front_off_ += n;
      return;
    }
    n -= remaining;
    front_off_ = 0;
    out_q_.pop_front();
  }
}

uint8_t* Connection::EnsureReadBuffer(size_t len) {
  if (read_buf_ == nullptr) {
    read_buf_ = std::make_unique<uint8_t[]>(len);
    read_buf_len_ = len;
  }
  return read_buf_.get();
}

}  // namespace server
}  // namespace next700
