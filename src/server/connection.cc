#include "server/connection.h"

namespace next700 {
namespace server {

uint64_t Connection::AdmitRequest() {
  const uint64_t seq = next_seq_++;
  order_.push_back(seq);
  return seq;
}

void Connection::Complete(uint64_t seq,
                          std::vector<uint8_t> encoded_response) {
  completed_.emplace(seq, std::move(encoded_response));
}

bool Connection::FlushOrdered() {
  bool any = false;
  while (!order_.empty()) {
    auto it = completed_.find(order_.front());
    if (it == completed_.end()) break;
    out_.insert(out_.end(), it->second.begin(), it->second.end());
    completed_.erase(it);
    order_.pop_front();
    any = true;
  }
  return any;
}

void Connection::ConsumeWritten(size_t n) {
  write_off_ += n;
  if (write_off_ == out_.size()) {
    out_.clear();
    write_off_ = 0;
  } else if (write_off_ >= out_.size() / 2) {
    // Compact once the written prefix dominates so long-lived pipelined
    // connections do not grow the buffer without bound.
    out_.erase(out_.begin(), out_.begin() + static_cast<ptrdiff_t>(write_off_));
    write_off_ = 0;
  }
}

}  // namespace server
}  // namespace next700
