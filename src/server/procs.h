#ifndef NEXT700_SERVER_PROCS_H_
#define NEXT700_SERVER_PROCS_H_

/// \file
/// The stored-procedure suite the transaction service ships with: a
/// partitioned key/value table ("kv") with get / put / read-modify-write
/// procedures. This is the service analogue of the YCSB microbenchmark —
/// small enough that the wire/dispatch layer dominates, which is exactly
/// what the N1 experiment measures — and it exercises every composition
/// axis (any CC scheme, partitioned or not, any logging kind; the RMW
/// procedure is deterministic, so command logging replays it correctly).
///
/// Argument encodings (WireWriter little-endian):
///   kKvGet: u64 key                      -> reply: value_size bytes
///   kKvPut: u64 key, value_size bytes    -> reply: empty
///   kKvRmw: u16 nkeys, nkeys x u64 keys  -> reply: empty
///           (reads each row FOR UPDATE, increments its first u64, writes)

#include <cstdint>

#include "txn/engine.h"

namespace next700 {
namespace server {

inline constexpr uint32_t kKvGet = 1;
inline constexpr uint32_t kKvPut = 2;
inline constexpr uint32_t kKvRmw = 3;

/// Ceiling on kKvRmw fan-out (bounds per-request work and arena growth).
inline constexpr uint16_t kMaxRmwKeys = 64;

struct KvServiceOptions {
  uint64_t num_records = 100000;
  uint32_t value_size = 64;  // Bytes per row; first 8 are the RMW counter.
  IndexKind index_kind = IndexKind::kHash;
  /// Skip the initial row load: recovery paths (checkpoint + log replay,
  /// replica bootstrap) need the schema and procedures on an *empty*
  /// engine — checkpoint Load re-inserts every row and would collide with
  /// pre-loaded data.
  bool load_rows = true;
  /// Horizontal sharding: with num_shards > 1, the load loop keeps only
  /// keys where key % num_shards == shard_id (the shard router's mapping;
  /// see src/shard/). Procedures and key validation are unchanged — a
  /// misrouted key simply misses the index. The engine's num_partitions is
  /// the *global* partition count, so partition ids in forwarded requests
  /// stay valid verbatim on every shard.
  uint32_t shard_id = 0;
  uint32_t num_shards = 1;
};

/// The shard that owns `key` under the modulo mapping.
inline uint32_t KvShardOf(uint64_t key, uint32_t num_shards) {
  return static_cast<uint32_t>(key % num_shards);
}

/// Keys are range-partitioned modulo the engine's partition count; clients
/// must declare the same mapping in their request partition sets.
inline uint32_t KvPartitionOf(uint64_t key, uint32_t num_partitions) {
  return static_cast<uint32_t>(key % num_partitions);
}

/// Creates and loads the "kv" table + primary index and registers the three
/// procedures. Single-threaded setup; call before Server::Start(). Returns
/// the number of rows loaded.
uint64_t RegisterKvService(Engine* engine, const KvServiceOptions& options);

}  // namespace server
}  // namespace next700

#endif  // NEXT700_SERVER_PROCS_H_
