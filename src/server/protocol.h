#ifndef NEXT700_SERVER_PROTOCOL_H_
#define NEXT700_SERVER_PROTOCOL_H_

/// \file
/// Binary wire protocol of the networked transaction service. Every frame
/// is length-prefixed:
///
///   [u32 body_len][u8 frame_type][body ... body_len bytes]
///
/// Every connection opens with a handshake: the peer's first frame must be
/// a Hello carrying the protocol magic, version, and role; the server
/// answers with a HelloAck echoing its own magic + version. A mixed-version
/// or non-next700 peer is rejected loudly (kInvalidArgument, connection
/// closed) instead of being fed to the request decoder as garbage.
///
/// Hello body (peer -> server):
///   u32 magic            kWireMagic ("N700")
///   u8  version          kWireVersion
///   u8  role             PeerRole: ordinary client, subscribing replica,
///                        or shard-router / 2PC coordinator
///
/// HelloAck body (server -> peer):
///   u32 magic
///   u8  version
///
/// Request body (client -> server):
///   u64 request_id       echoed verbatim in the response
///   u32 proc_id          registered stored procedure to run
///   u64 min_read_lsn     read-your-writes floor for replica snapshot reads:
///                        a replica whose applied LSN is below this answers
///                        kUnavailable instead of serving a staler snapshot
///                        (0 = any snapshot is acceptable)
///   u16 num_partitions   declared partition set (H-Store compositions)
///   u32 arg_len
///   num_partitions x u32 partition ids
///   arg_len bytes of procedure arguments (typed via WireWriter/WireReader)
///
/// Response body (server -> client):
///   u64 request_id
///   u8  status_code      StatusCode of the procedure execution
///   u64 commit_lsn       log position the commit waited on; on a replica
///                        read, the applied LSN the snapshot was served at
///   u32 payload_len
///   payload_len bytes    procedure reply payload (TxnContext::reply_payload)
///
/// Replication stream (primary -> replica, after a role=kReplica Hello):
///
/// ReplBatch body:
///   u64 start_lsn        LSN of the first byte of `frames`
///   u64 primary_durable_lsn   primary's durable watermark (lag metric)
///   u32 frames_len
///   frames_len bytes     verbatim log frames (the primary's on-disk bytes)
///   u64 batch_sum        FNV-1a over `frames` — transport integrity on top
///                        of the per-frame checksums
///
/// ReplAck body (replica -> primary):
///   u64 durable_lsn      replica-durable prefix (semisync release gate)
///   u64 applied_lsn      applied to the replica engine (staleness metric)
///
/// The replica's first ReplAck doubles as its subscription position: the
/// primary starts shipping from that ack's durable_lsn.
///
/// Two-phase commit (coordinator <-> participant, after a role=kCoordinator
/// Hello): the coordinator may forward ordinary Request frames verbatim
/// (single-shard fast path — the participant answers with ordinary
/// Response frames) and may drive Prepare / CommitDecision / AbortDecision
/// / InDoubtQuery frames for cross-shard transactions. Every coordinator
/// frame gets exactly one reply frame, in arrival order, over the same
/// per-connection FIFO machinery as responses: Request -> Response,
/// Prepare -> Vote, *Decision -> DecisionAck, InDoubtQuery -> InDoubtList.
/// Frame bodies are documented on their structs below.
///
/// Byte order: every multi-byte integer on the wire is little-endian,
/// serialized through the StoreLE/LoadLE helpers — never raw host-memory
/// copies — so mixed-endian peers interoperate. The golden-frame tests in
/// protocol_test.cc pin the exact octets.
///
/// Robustness contract: decoders never trust the peer. Oversized or
/// garbage headers are unrecoverable (the stream cannot be resynchronized)
/// and yield kInvalidArgument — the connection must be closed. A well-framed
/// body that fails to decode is recoverable: the server answers with an
/// error response and keeps the connection. Truncated frames simply wait
/// for more bytes; a peer that hangs up mid-frame just closes. A ReplBatch
/// whose batch_sum disagrees is kCorruption: the stream cannot be trusted
/// and the replica must reconnect.

#include <cstdint>
#include <cstring>
#include <string>
#include <vector>

#include "common/status.h"

namespace next700 {
namespace server {

enum class FrameType : uint8_t {
  kRequest = 1,
  kResponse = 2,
  kHello = 3,
  kHelloAck = 4,
  kReplBatch = 5,
  kReplAck = 6,
  // Two-phase commit (coordinator <-> participant, after a role=kCoordinator
  // Hello). See the "Sharding & 2PC" section of DESIGN.md.
  kPrepare = 7,       // coordinator -> participant: execute + harden, vote
  kVote = 8,          // participant -> coordinator: yes (kOk) or no + reason
  kCommitDecision = 9,   // coordinator -> participant: commit `gtid`
  kAbortDecision = 10,   // coordinator -> participant: abort `gtid`
  kDecisionAck = 11,  // participant -> coordinator: decision applied
  kInDoubtQuery = 12,  // coordinator -> participant: list your in-doubt gtids
  kInDoubtList = 13,   // participant -> coordinator: the in-doubt gtid set
};

/// What a connecting peer is, declared in its Hello.
enum class PeerRole : uint8_t {
  kClient = 0,
  kReplica = 1,
  /// A shard router / 2PC coordinator: may forward verbatim client
  /// requests (single-shard fast path) and drive the prepare/decision
  /// frames above. Exempt from client read-pausing like replicas: its
  /// decision frames release prepared transactions, so throttling it
  /// could wedge the participant.
  kCoordinator = 2,
};

/// "N700", little-endian. A peer that opens with anything else is not
/// speaking this protocol at all.
inline constexpr uint32_t kWireMagic = 0x3030374Eu;
/// Bumped on any incompatible change to frame layouts.
inline constexpr uint8_t kWireVersion = 1;

/// Hard ceiling on frame bodies; anything larger is a protocol violation
/// (or an attack) and closes the connection.
inline constexpr uint32_t kMaxFrameBody = 1u << 20;
/// Ceiling on a request's declared partition set.
inline constexpr uint16_t kMaxPartitionsPerRequest = 4096;
/// Bytes of frame header preceding every body.
inline constexpr size_t kFrameHeaderBytes = 5;
/// Ceiling on the frame payload of one ReplBatch; the shipper cuts batches
/// here (on a log-frame boundary) so a batch always fits kMaxFrameBody.
inline constexpr uint32_t kMaxReplBatchBytes = 256u << 10;

// --- Wire byte order ---------------------------------------------------
// The wire is explicitly little-endian. Multi-byte integers are composed
// byte-by-byte from shifts, never memcpy'd from host memory, so a
// big-endian peer produces and parses the same octets as a little-endian
// one. (Compilers collapse these to single moves on LE hardware.)

inline void StoreLE16(uint16_t v, uint8_t* p) {
  p[0] = static_cast<uint8_t>(v);
  p[1] = static_cast<uint8_t>(v >> 8);
}
inline void StoreLE32(uint32_t v, uint8_t* p) {
  p[0] = static_cast<uint8_t>(v);
  p[1] = static_cast<uint8_t>(v >> 8);
  p[2] = static_cast<uint8_t>(v >> 16);
  p[3] = static_cast<uint8_t>(v >> 24);
}
inline void StoreLE64(uint64_t v, uint8_t* p) {
  StoreLE32(static_cast<uint32_t>(v), p);
  StoreLE32(static_cast<uint32_t>(v >> 32), p + 4);
}
inline uint16_t LoadLE16(const uint8_t* p) {
  return static_cast<uint16_t>(p[0] | (p[1] << 8));
}
inline uint32_t LoadLE32(const uint8_t* p) {
  return static_cast<uint32_t>(p[0]) | (static_cast<uint32_t>(p[1]) << 8) |
         (static_cast<uint32_t>(p[2]) << 16) |
         (static_cast<uint32_t>(p[3]) << 24);
}
inline uint64_t LoadLE64(const uint8_t* p) {
  return static_cast<uint64_t>(LoadLE32(p)) |
         (static_cast<uint64_t>(LoadLE32(p + 4)) << 32);
}

/// Append-only little-endian serializer for frame bodies and procedure
/// arguments (the "typed argument encoding" of the service).
class WireWriter {
 public:
  explicit WireWriter(std::vector<uint8_t>* out) : out_(out) {}

  void PutU8(uint8_t v) { out_->push_back(v); }
  void PutU16(uint16_t v) {
    uint8_t b[2];
    StoreLE16(v, b);
    PutRaw(b, sizeof(b));
  }
  void PutU32(uint32_t v) {
    uint8_t b[4];
    StoreLE32(v, b);
    PutRaw(b, sizeof(b));
  }
  void PutU64(uint64_t v) {
    uint8_t b[8];
    StoreLE64(v, b);
    PutRaw(b, sizeof(b));
  }
  /// IEEE-754 bits, little-endian like every other integer.
  void PutDouble(double v) {
    uint64_t bits;
    std::memcpy(&bits, &v, sizeof(bits));
    PutU64(bits);
  }
  /// Length-prefixed byte string.
  void PutBytes(const void* data, size_t len) {
    PutU32(static_cast<uint32_t>(len));
    PutRaw(data, len);
  }
  void PutString(const std::string& s) { PutBytes(s.data(), s.size()); }
  /// Raw bytes with no length prefix (caller frames them).
  void PutRaw(const void* data, size_t len) {
    const uint8_t* p = static_cast<const uint8_t*>(data);
    out_->insert(out_->end(), p, p + len);
  }

 private:
  std::vector<uint8_t>* out_;
};

/// Bounds-checked little-endian reader; every getter returns false instead
/// of reading past the end, so malformed input can never fault.
class WireReader {
 public:
  WireReader(const uint8_t* data, size_t len) : data_(data), len_(len) {}

  bool GetU8(uint8_t* v) { return GetRaw(v, sizeof(*v)); }
  bool GetU16(uint16_t* v) {
    uint8_t b[2];
    if (!GetRaw(b, sizeof(b))) return false;
    *v = LoadLE16(b);
    return true;
  }
  bool GetU32(uint32_t* v) {
    uint8_t b[4];
    if (!GetRaw(b, sizeof(b))) return false;
    *v = LoadLE32(b);
    return true;
  }
  bool GetU64(uint64_t* v) {
    uint8_t b[8];
    if (!GetRaw(b, sizeof(b))) return false;
    *v = LoadLE64(b);
    return true;
  }
  bool GetDouble(double* v) {
    uint64_t bits;
    if (!GetU64(&bits)) return false;
    std::memcpy(v, &bits, sizeof(*v));
    return true;
  }
  /// Reads a length-prefixed byte string appended by PutBytes/PutString.
  bool GetBytes(std::vector<uint8_t>* out) {
    uint32_t n;
    if (!GetU32(&n) || n > remaining()) return false;
    out->assign(data_ + pos_, data_ + pos_ + n);
    pos_ += n;
    return true;
  }
  bool GetString(std::string* out) {
    uint32_t n;
    if (!GetU32(&n) || n > remaining()) return false;
    out->assign(reinterpret_cast<const char*>(data_ + pos_), n);
    pos_ += n;
    return true;
  }
  bool GetRaw(void* out, size_t len) {
    if (len > remaining()) return false;
    std::memcpy(out, data_ + pos_, len);
    pos_ += len;
    return true;
  }
  size_t remaining() const { return len_ - pos_; }

 private:
  const uint8_t* data_;
  size_t len_;
  size_t pos_ = 0;
};

struct Request {
  uint64_t request_id = 0;
  uint32_t proc_id = 0;
  uint64_t min_read_lsn = 0;
  std::vector<uint32_t> partitions;
  std::vector<uint8_t> args;
};

struct Response {
  uint64_t request_id = 0;
  StatusCode status = StatusCode::kOk;
  uint64_t commit_lsn = 0;
  std::vector<uint8_t> payload;
};

struct Hello {
  uint32_t magic = kWireMagic;
  uint8_t version = kWireVersion;
  PeerRole role = PeerRole::kClient;
};

struct HelloAck {
  uint32_t magic = kWireMagic;
  uint8_t version = kWireVersion;
};

struct ReplBatch {
  uint64_t start_lsn = 0;
  uint64_t primary_durable_lsn = 0;
  std::vector<uint8_t> frames;

  uint64_t end_lsn() const { return start_lsn + frames.size(); }
};

struct ReplAck {
  uint64_t durable_lsn = 0;
  uint64_t applied_lsn = 0;
};

/// Phase one of 2PC (coordinator -> participant): execute the embedded
/// stored-procedure invocation as one transaction, harden a prepare record
/// (redo + gtid) to the participant's log, and answer with a Vote — but do
/// not commit or release locks until the coordinator's decision arrives.
///
/// Prepare body:
///   u64 gtid             globally unique transaction id (coordinator-chosen)
///   u32 proc_id
///   u16 num_partitions
///   u32 arg_len
///   num_partitions x u32 partition ids
///   arg_len bytes of procedure arguments
struct Prepare {
  uint64_t gtid = 0;
  uint32_t proc_id = 0;
  std::vector<uint32_t> partitions;
  std::vector<uint8_t> args;
};

/// Participant's vote. kOk means "yes — the prepare record is durable and
/// the transaction will commit iff told to"; any other status is a no vote
/// (the participant has already rolled back).
///
/// Vote body: u64 gtid, u8 status_code, u64 prepare_lsn (0 on a no vote).
struct Vote {
  uint64_t gtid = 0;
  StatusCode status = StatusCode::kOk;
  uint64_t prepare_lsn = 0;
};

/// Coordinator's decision for one gtid; the frame type (kCommitDecision /
/// kAbortDecision) carries the verdict. Body: u64 gtid.
struct Decision {
  uint64_t gtid = 0;
};

/// Participant's acknowledgement that a decision was applied (and, for a
/// commit, made durable). kOk also answers a redelivered decision for a
/// gtid the participant no longer knows — decisions are idempotent.
///
/// DecisionAck body: u64 gtid, u8 status_code.
struct DecisionAck {
  uint64_t gtid = 0;
  StatusCode status = StatusCode::kOk;
};

/// kInDoubtQuery has an empty body; the reply lists every transaction the
/// participant has prepared but not yet seen a decision for (recovered
/// from its log or still live). InDoubtList body: u32 count, count x u64.
struct InDoubtList {
  std::vector<uint64_t> gtids;
};

/// Appends a complete frame (header + body) to `out`.
void EncodeRequest(const Request& request, std::vector<uint8_t>* out);
void EncodeResponse(const Response& response, std::vector<uint8_t>* out);
void EncodeHello(const Hello& hello, std::vector<uint8_t>* out);
void EncodeHelloAck(const HelloAck& ack, std::vector<uint8_t>* out);
void EncodeReplBatch(const ReplBatch& batch, std::vector<uint8_t>* out);
void EncodeReplAck(const ReplAck& ack, std::vector<uint8_t>* out);
void EncodePrepare(const Prepare& prepare, std::vector<uint8_t>* out);
void EncodeVote(const Vote& vote, std::vector<uint8_t>* out);
/// `type` must be kCommitDecision or kAbortDecision.
void EncodeDecision(FrameType type, const Decision& decision,
                    std::vector<uint8_t>* out);
void EncodeDecisionAck(const DecisionAck& ack, std::vector<uint8_t>* out);
void EncodeInDoubtQuery(std::vector<uint8_t>* out);
void EncodeInDoubtList(const InDoubtList& list, std::vector<uint8_t>* out);

/// Decodes a frame body. kInvalidArgument on any structural defect
/// (truncated fields, inconsistent lengths, trailing garbage, out-of-range
/// enum values). The frame boundary itself is intact in this case, so the
/// connection can survive.
Status DecodeRequest(const uint8_t* body, size_t len, Request* out);
Status DecodeResponse(const uint8_t* body, size_t len, Response* out);

/// Zero-copy view of a request frame body: the header fields plus a
/// pointer into the caller's buffer for the argument bytes (valid only
/// while that buffer is). The shard router's fast path peeks at routing
/// fields on every forwarded frame; the owned vectors DecodeRequest
/// fills would cost two allocations per frame for data the router never
/// keeps. Validates the same framing invariants as DecodeRequest.
struct RequestView {
  uint64_t request_id = 0;
  uint32_t proc_id = 0;
  uint64_t min_read_lsn = 0;
  const uint8_t* args = nullptr;
  size_t args_len = 0;
};
Status DecodeRequestView(const uint8_t* body, size_t len, RequestView* out);

/// Handshake/replication decode errors always close the connection: a peer
/// that cannot even say Hello correctly (wrong magic, wrong version) has
/// nothing trustworthy to say next. DecodeReplBatch returns kCorruption
/// when the batch checksum disagrees with the frame bytes.
Status DecodeHello(const uint8_t* body, size_t len, Hello* out);
Status DecodeHelloAck(const uint8_t* body, size_t len, HelloAck* out);
Status DecodeReplBatch(const uint8_t* body, size_t len, ReplBatch* out);
Status DecodeReplAck(const uint8_t* body, size_t len, ReplAck* out);
Status DecodePrepare(const uint8_t* body, size_t len, Prepare* out);
Status DecodeVote(const uint8_t* body, size_t len, Vote* out);
Status DecodeDecision(const uint8_t* body, size_t len, Decision* out);
Status DecodeDecisionAck(const uint8_t* body, size_t len, DecisionAck* out);
Status DecodeInDoubtList(const uint8_t* body, size_t len, InDoubtList* out);

/// One frame extracted from the byte stream; `body` points into the
/// decoder's buffer and is valid until the next Next()/Feed() call.
struct Frame {
  FrameType type = FrameType::kRequest;
  const uint8_t* body = nullptr;
  uint32_t body_len = 0;
};

/// Incremental frame extractor over a TCP byte stream. Feed() raw bytes,
/// then drain complete frames with Next(). A non-OK status from Next()
/// means the stream is unrecoverable and the connection must be closed.
class FrameDecoder {
 public:
  void Feed(const uint8_t* data, size_t len) {
    buffer_.insert(buffer_.end(), data, data + len);
  }

  /// Extracts the next complete frame. Returns OK with *have_frame=true
  /// when a frame was produced, OK with *have_frame=false when more bytes
  /// are needed, kInvalidArgument when the stream is corrupt (oversized
  /// length or unknown frame type).
  Status Next(Frame* frame, bool* have_frame);

  /// Bytes buffered but not yet consumed (tests; idle-connection audits).
  size_t buffered_bytes() const { return buffer_.size() - consumed_; }

 private:
  std::vector<uint8_t> buffer_;
  size_t consumed_ = 0;
};

/// True if `code` is a StatusCode a conforming peer may send on the wire.
bool IsValidWireStatus(uint8_t code);

}  // namespace server
}  // namespace next700

#endif  // NEXT700_SERVER_PROTOCOL_H_
