#include "server/procs.h"

#include <cstring>
#include <vector>

#include "server/protocol.h"

namespace next700 {
namespace server {

uint64_t RegisterKvService(Engine* engine, const KvServiceOptions& options) {
  NEXT700_CHECK(options.value_size >= sizeof(uint64_t));
  Schema schema;
  schema.AddChar("value", options.value_size);
  Table* table = engine->CreateTable("kv", std::move(schema));
  Index* index = engine->CreateIndex("kv_pk", table, options.index_kind,
                                     options.num_records * 2);
  const uint32_t num_partitions = engine->options().num_partitions;
  const uint32_t row_size = table->schema().row_size();
  NEXT700_CHECK(options.num_shards >= 1);
  NEXT700_CHECK(options.shard_id < options.num_shards);
  uint64_t loaded = 0;
  if (options.load_rows) {
    std::vector<uint8_t> value(row_size, 0);
    for (uint64_t key = 0; key < options.num_records; ++key) {
      if (KvShardOf(key, options.num_shards) != options.shard_id) continue;
      std::memcpy(value.data(), &key, sizeof(key));  // RMW counter seed.
      Row* row = engine->LoadRow(table, KvPartitionOf(key, num_partitions),
                                 key, value.data());
      NEXT700_CHECK(index->Insert(key, row).ok());
      ++loaded;
    }
  }

  const uint64_t num_records = options.num_records;

  engine->RegisterProcedure(
      kKvGet, [index, row_size, num_records](Engine* eng, TxnContext* txn,
                                             const uint8_t* args,
                                             size_t arg_len) -> Status {
        WireReader reader(args, arg_len);
        uint64_t key;
        if (!reader.GetU64(&key) || reader.remaining() != 0 ||
            key >= num_records) {
          return Status::InvalidArgument("kv_get: bad arguments");
        }
        auto& reply = txn->reply_payload();
        reply.resize(row_size);
        return eng->Read(txn, index, key, reply.data());
      },
      /*read_only=*/true);

  engine->RegisterProcedure(
      kKvPut, [index, row_size, num_records](Engine* eng, TxnContext* txn,
                                             const uint8_t* args,
                                             size_t arg_len) -> Status {
        WireReader reader(args, arg_len);
        uint64_t key;
        if (!reader.GetU64(&key) || reader.remaining() != row_size ||
            key >= num_records) {
          return Status::InvalidArgument("kv_put: bad arguments");
        }
        std::vector<uint8_t> value(row_size);
        NEXT700_CHECK(reader.GetRaw(value.data(), row_size));
        return eng->Update(txn, index, key, value.data());
      });

  engine->RegisterProcedure(
      kKvRmw, [index, row_size, num_records](Engine* eng, TxnContext* txn,
                                             const uint8_t* args,
                                             size_t arg_len) -> Status {
        WireReader reader(args, arg_len);
        uint16_t nkeys;
        if (!reader.GetU16(&nkeys) || nkeys == 0 || nkeys > kMaxRmwKeys ||
            reader.remaining() != nkeys * sizeof(uint64_t)) {
          return Status::InvalidArgument("kv_rmw: bad arguments");
        }
        std::vector<uint8_t> value(row_size);
        for (uint16_t i = 0; i < nkeys; ++i) {
          uint64_t key;
          NEXT700_CHECK(reader.GetU64(&key));
          if (key >= num_records) {
            return Status::InvalidArgument("kv_rmw: key out of range");
          }
          NEXT700_RETURN_IF_ERROR(
              eng->ReadForUpdate(txn, index, key, value.data()));
          uint64_t counter;
          std::memcpy(&counter, value.data(), sizeof(counter));
          ++counter;
          std::memcpy(value.data(), &counter, sizeof(counter));
          NEXT700_RETURN_IF_ERROR(eng->Update(txn, index, key, value.data()));
        }
        return Status::OK();
      });

  return options.load_rows ? loaded : options.num_records;
}

}  // namespace server
}  // namespace next700
