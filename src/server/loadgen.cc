#include "server/loadgen.h"

#include <fcntl.h>
#include <poll.h>
#include <sys/socket.h>
#include <unistd.h>

#include <algorithm>
#include <cerrno>
#include <cstring>
#include <deque>
#include <thread>
#include <vector>

#include "common/rng.h"
#include "common/stats.h"
#include "server/client.h"
#include "server/procs.h"

namespace next700 {
namespace server {

namespace {

struct PendingRequest {
  uint64_t request_id;
  uint64_t sent_ns;
};

Request MakeRequest(const LoadGenOptions& options, uint64_t request_id,
                    Rng* rng, ZipfGenerator* zipf) {
  Request request;
  request.request_id = request_id;
  WireWriter args(&request.args);
  const double op = rng->NextDouble();
  if (op < options.get_fraction) {
    request.proc_id = kKvGet;
    const uint64_t key = zipf->Next(rng);
    args.PutU64(key);
    if (options.declare_partitions) {
      request.partitions.push_back(
          KvPartitionOf(key, options.num_partitions));
    }
  } else if (op < options.get_fraction + options.put_fraction) {
    request.proc_id = kKvPut;
    const uint64_t key = zipf->Next(rng);
    args.PutU64(key);
    for (uint32_t i = 0; i < options.value_size; ++i) {
      args.PutU8(static_cast<uint8_t>(rng->Next()));
    }
    if (options.declare_partitions) {
      request.partitions.push_back(
          KvPartitionOf(key, options.num_partitions));
    }
  } else {
    request.proc_id = kKvRmw;
    std::vector<uint64_t> keys;
    if (options.num_shards > 1 &&
        rng->NextDouble() < options.multi_shard_fraction) {
      // Deliberate cross-shard transaction: adjacent keys always map to
      // different shards under key % num_shards.
      uint64_t k = zipf->Next(rng);
      if (k + 1 >= options.num_records) k = 0;
      keys = {k, k + 1};
    } else {
      keys.reserve(options.rmw_keys);
      uint64_t home_shard = 0;
      for (uint16_t i = 0; i < options.rmw_keys; ++i) {
        uint64_t key = zipf->Next(rng);
        if (options.num_shards > 1) {
          // Coerce every key onto the first key's shard so the request
          // stays single-shard (the router fast path).
          if (i == 0) {
            home_shard = key % options.num_shards;
          } else {
            key = key - (key % options.num_shards) + home_shard;
            if (key >= options.num_records) {
              key = key < options.num_shards ? home_shard
                                             : key - options.num_shards;
            }
          }
        }
        keys.push_back(key);
      }
    }
    args.PutU16(static_cast<uint16_t>(keys.size()));
    for (const uint64_t key : keys) {
      args.PutU64(key);
      if (options.declare_partitions) {
        request.partitions.push_back(
            KvPartitionOf(key, options.num_partitions));
      }
    }
  }
  if (!request.partitions.empty()) {
    std::sort(request.partitions.begin(), request.partitions.end());
    request.partitions.erase(
        std::unique(request.partitions.begin(), request.partitions.end()),
        request.partitions.end());
  }
  return request;
}

void CountResponse(const Response& response, LoadGenStats* stats) {
  switch (response.status) {
    case StatusCode::kOk:
      ++stats->ok;
      break;
    case StatusCode::kAborted:
      ++stats->aborted;
      break;
    case StatusCode::kResourceExhausted:
      ++stats->resource_exhausted;
      break;
    default:
      ++stats->other_errors;
      break;
  }
}

void ClientThread(const LoadGenOptions& options, int thread_index,
                  LoadGenStats* local) {
  Rng rng(options.seed + static_cast<uint64_t>(thread_index) * 7919);
  ZipfGenerator zipf(options.num_records, options.theta);
  Client client;
  if (!client.Connect(options.host, options.port).ok()) {
    ++local->transport_errors;
    return;
  }
  const uint64_t start_ns = NowNanos();
  const uint64_t measure_start_ns =
      start_ns + static_cast<uint64_t>(options.warmup_seconds * 1e9);
  const uint64_t end_ns =
      measure_start_ns + static_cast<uint64_t>(options.seconds * 1e9);
  bool measuring = options.warmup_seconds <= 0;

  std::deque<PendingRequest> outstanding;
  uint64_t next_request_id = 1;
  bool broken = false;
  const size_t depth = static_cast<size_t>(
      options.pipeline_depth > 0 ? options.pipeline_depth : 1);

  auto receive_one = [&]() -> bool {
    Response response;
    const Status s = client.Recv(&response, options.deadline_ms);
    if (!s.ok()) {
      ++local->transport_errors;
      return false;
    }
    // The server promises per-connection responses in request order; a
    // mismatch is a protocol violation, not a latency artifact.
    if (outstanding.empty() ||
        response.request_id != outstanding.front().request_id) {
      ++local->transport_errors;
      return false;
    }
    if (measuring) {
      // Requests sent before the warmup boundary carry warmup queueing in
      // their latency; count their outcome but keep them out of the
      // percentiles.
      if (outstanding.front().sent_ns >= measure_start_ns) {
        local->latency_ns.Record(NowNanos() - outstanding.front().sent_ns);
      }
      CountResponse(response, local);
    }
    outstanding.pop_front();
    return true;
  };

  while (NowNanos() < end_ns && !broken) {
    if (!measuring && NowNanos() >= measure_start_ns) {
      // Warmup boundary: drop everything counted so far.
      *local = LoadGenStats{};
      measuring = true;
    }
    while (outstanding.size() < depth) {
      const Request request =
          MakeRequest(options, next_request_id++, &rng, &zipf);
      const uint64_t sent_ns = NowNanos();
      if (!client.Send(request).ok()) {
        ++local->transport_errors;
        broken = true;
        break;
      }
      if (measuring) ++local->requests_sent;
      outstanding.push_back(PendingRequest{request.request_id, sent_ns});
    }
    if (broken) break;
    if (!receive_one()) broken = true;
  }
  while (!broken && !outstanding.empty()) {
    if (!receive_one()) broken = true;
  }
  if (broken && !outstanding.empty()) {
    // The connection died with requests in flight: those responses are
    // lost, not pending — without this the sent/answered books never
    // balance after a mid-run failure.
    local->transport_errors += outstanding.size();
    outstanding.clear();
  }
  // A thread that broke early measured less than the configured window;
  // claiming the full window would understate its throughput share.
  const uint64_t now_ns = NowNanos();
  const uint64_t measured_end = std::min(now_ns, end_ns);
  local->elapsed_seconds =
      measured_end > measure_start_ns
          ? static_cast<double>(measured_end - measure_start_ns) / 1e9
          : 0.0;
}

/// One nonblocking connection of the multiplexed generator: its own
/// request-id space, pipeline, decoder, and unsent-bytes buffer.
struct MuxConn {
  int fd = -1;
  FrameDecoder decoder;
  std::deque<PendingRequest> outstanding;
  std::vector<uint8_t> out;  // Encoded requests not yet accepted by send().
  size_t out_off = 0;
  uint64_t next_request_id = 1;
  bool broken = false;
};

/// Drives `conn_count` nonblocking connections from one thread. The
/// blocking path above measures latency from Send() to the response; here
/// it runs from encode time, which additionally includes any time a
/// request waits in the local send buffer — the honest number when the
/// server applies backpressure by not reading.
void MuxClientThread(const LoadGenOptions& options, int thread_index,
                     int conn_count, LoadGenStats* local) {
  Rng rng(options.seed + static_cast<uint64_t>(thread_index) * 7919);
  ZipfGenerator zipf(options.num_records, options.theta);
  const size_t depth = static_cast<size_t>(
      options.pipeline_depth > 0 ? options.pipeline_depth : 1);

  std::vector<MuxConn> conns(static_cast<size_t>(conn_count));
  for (MuxConn& mc : conns) {
    Client client;
    if (!client.Connect(options.host, options.port).ok()) {
      // A connection that never came up contributes one error and zero
      // samples — it must not leak an fd or distort anything the healthy
      // connections measure.
      ++local->transport_errors;
      mc.broken = true;
      continue;
    }
    mc.fd = client.ReleaseFd();
    const int fl = ::fcntl(mc.fd, F_GETFL, 0);
    if (fl < 0 || ::fcntl(mc.fd, F_SETFL, fl | O_NONBLOCK) < 0) {
      ++local->transport_errors;
      ::close(mc.fd);
      mc.fd = -1;
      mc.broken = true;
    }
  }

  const uint64_t start_ns = NowNanos();
  const uint64_t measure_start_ns =
      start_ns + static_cast<uint64_t>(options.warmup_seconds * 1e9);
  const uint64_t end_ns =
      measure_start_ns + static_cast<uint64_t>(options.seconds * 1e9);

  auto fail = [&](MuxConn* mc) {
    // One event for the failure itself, plus every response still in
    // flight on this connection — they are lost, not pending.
    local->transport_errors += 1 + mc->outstanding.size();
    mc->broken = true;
    ::close(mc->fd);
    mc->fd = -1;
    mc->outstanding.clear();
  };

  auto try_send = [&](MuxConn* mc) {
    while (mc->out_off < mc->out.size()) {
      const ssize_t n =
          ::send(mc->fd, mc->out.data() + mc->out_off,
                 mc->out.size() - mc->out_off, MSG_NOSIGNAL);
      if (n > 0) {
        mc->out_off += static_cast<size_t>(n);
        continue;
      }
      if (n < 0 && errno == EINTR) continue;
      if (n < 0 && (errno == EAGAIN || errno == EWOULDBLOCK)) return;
      fail(mc);
      return;
    }
    mc->out.clear();
    mc->out_off = 0;
  };

  bool measuring = options.warmup_seconds <= 0;

  auto top_up = [&](MuxConn* mc) {
    while (mc->outstanding.size() < depth) {
      const Request request =
          MakeRequest(options, mc->next_request_id++, &rng, &zipf);
      EncodeRequest(request, &mc->out);
      if (measuring) ++local->requests_sent;
      mc->outstanding.push_back(
          PendingRequest{request.request_id, NowNanos()});
    }
    try_send(mc);
  };

  /// Reads and decodes everything available; false only on a broken
  /// stream (protocol violation or connection loss).
  auto drain_responses = [&](MuxConn* mc) -> bool {
    for (;;) {
      Frame frame;
      bool have = false;
      if (!mc->decoder.Next(&frame, &have).ok()) return false;
      if (!have) return true;
      if (frame.type != FrameType::kResponse) return false;
      Response response;
      if (!DecodeResponse(frame.body, frame.body_len, &response).ok()) {
        return false;
      }
      // Per-connection responses arrive in request order; a mismatch is a
      // protocol violation, not a latency artifact.
      if (mc->outstanding.empty() ||
          response.request_id != mc->outstanding.front().request_id) {
        return false;
      }
      if (measuring) {
        // Requests encoded before the warmup boundary carry warmup
        // queueing; count their outcome, skip their latency sample.
        if (mc->outstanding.front().sent_ns >= measure_start_ns) {
          local->latency_ns.Record(NowNanos() -
                                   mc->outstanding.front().sent_ns);
        }
        CountResponse(response, local);
      }
      mc->outstanding.pop_front();
    }
  };

  auto on_readable = [&](MuxConn* mc) {
    uint8_t buf[64 * 1024];
    for (;;) {
      const ssize_t n = ::read(mc->fd, buf, sizeof(buf));
      if (n > 0) {
        mc->decoder.Feed(buf, static_cast<size_t>(n));
        continue;
      }
      if (n < 0 && errno == EINTR) continue;
      if (n < 0 && (errno == EAGAIN || errno == EWOULDBLOCK)) break;
      fail(mc);  // EOF or hard error mid-run.
      return;
    }
    if (!drain_responses(mc)) fail(mc);
  };

  std::vector<pollfd> pfds;
  std::vector<size_t> pfd_conn;

  auto poll_once = [&](bool topping_up, int timeout_ms) {
    pfds.clear();
    pfd_conn.clear();
    for (size_t i = 0; i < conns.size(); ++i) {
      MuxConn& mc = conns[i];
      if (mc.broken) continue;
      short events = POLLIN;
      if (mc.out_off < mc.out.size()) events |= POLLOUT;
      pfds.push_back(pollfd{mc.fd, events, 0});
      pfd_conn.push_back(i);
    }
    if (pfds.empty()) return false;
    const int ready = ::poll(pfds.data(), pfds.size(), timeout_ms);
    if (ready <= 0) return true;  // Timeout/EINTR: caller re-checks time.
    for (size_t p = 0; p < pfds.size(); ++p) {
      if (pfds[p].revents == 0) continue;
      MuxConn& mc = conns[pfd_conn[p]];
      if (mc.broken) continue;
      if (pfds[p].revents & (POLLIN | POLLERR | POLLHUP)) on_readable(&mc);
      if (mc.broken) continue;
      if (pfds[p].revents & POLLOUT) try_send(&mc);
      if (mc.broken) continue;
      if (topping_up) top_up(&mc);
    }
    return true;
  };

  for (MuxConn& mc : conns) {
    if (!mc.broken) top_up(&mc);
  }
  while (NowNanos() < end_ns) {
    if (!measuring && NowNanos() >= measure_start_ns) {
      // Warmup boundary: drop everything counted so far.
      *local = LoadGenStats{};
      measuring = true;
    }
    if (!poll_once(/*topping_up=*/true, /*timeout_ms=*/50)) break;
  }

  // Drain: stop generating, collect in-flight responses until done or the
  // per-request deadline budget runs out.
  const uint64_t drain_deadline_ns =
      NowNanos() + (options.deadline_ms > 0
                        ? static_cast<uint64_t>(options.deadline_ms) * 1000000
                        : 0);
  for (;;) {
    size_t inflight = 0;
    for (const MuxConn& mc : conns) inflight += mc.outstanding.size();
    if (inflight == 0) break;
    if (options.deadline_ms > 0 && NowNanos() >= drain_deadline_ns) {
      // Every remaining in-flight response never came, not just one.
      local->transport_errors += inflight;
      break;
    }
    if (!poll_once(/*topping_up=*/false, /*timeout_ms=*/50)) break;
  }
  for (MuxConn& mc : conns) {
    if (mc.fd >= 0) ::close(mc.fd);
  }
  // Report the window actually measured, not the configured one — a run
  // whose connections all died early must not inflate its throughput
  // denominator (or deflate it, if the drain ran long).
  const uint64_t measured_end = std::min(NowNanos(), end_ns);
  local->elapsed_seconds =
      measured_end > measure_start_ns
          ? static_cast<double>(measured_end - measure_start_ns) / 1e9
          : 0.0;
}

}  // namespace

Status RunKvAudit(const LoadGenOptions& options, uint64_t min_read_lsn,
                  KvAuditResult* out) {
  *out = KvAuditResult{};
  Client client;
  NEXT700_RETURN_IF_ERROR(client.Connect(options.host, options.port));
  const size_t depth = static_cast<size_t>(
      options.pipeline_depth > 0 ? options.pipeline_depth : 1);
  std::deque<uint64_t> outstanding;  // Keys, in request order.

  auto receive_one = [&]() -> Status {
    Response response;
    NEXT700_RETURN_IF_ERROR(client.Recv(&response, options.deadline_ms));
    const uint64_t key = outstanding.front();
    outstanding.pop_front();
    ++out->keys_checked;
    out->snapshot_lsn = response.commit_lsn;
    if (response.status == StatusCode::kOk) {
      if (response.payload.size() < sizeof(uint64_t)) {
        return Status::Corruption("audit: short kv_get payload");
      }
      uint64_t counter;
      std::memcpy(&counter, response.payload.data(), sizeof(counter));
      out->increment_sum += counter - key;  // Seed counter equals the key.
    } else if (response.status == StatusCode::kNotFound) {
      ++out->missing;
    } else {
      ++out->errors;
    }
    return Status::OK();
  };

  for (uint64_t key = 0; key < options.num_records; ++key) {
    Request request;
    request.request_id = key + 1;
    request.proc_id = kKvGet;
    request.min_read_lsn = min_read_lsn;
    WireWriter args(&request.args);
    args.PutU64(key);
    if (options.declare_partitions) {
      request.partitions.push_back(
          KvPartitionOf(key, options.num_partitions));
    }
    NEXT700_RETURN_IF_ERROR(client.Send(request));
    outstanding.push_back(key);
    if (outstanding.size() >= depth) NEXT700_RETURN_IF_ERROR(receive_one());
  }
  while (!outstanding.empty()) NEXT700_RETURN_IF_ERROR(receive_one());
  return Status::OK();
}

LoadGenStats RunLoadGen(const LoadGenOptions& options) {
  const int n = options.connections > 0 ? options.connections : 1;
  const bool mux = options.threads > 0 && options.threads < n;
  const int thread_count = mux ? options.threads : n;
  std::vector<LoadGenStats> locals(static_cast<size_t>(thread_count));
  std::vector<std::thread> threads;
  threads.reserve(static_cast<size_t>(thread_count));
  for (int i = 0; i < thread_count; ++i) {
    if (mux) {
      // Spread the connections as evenly as the remainder allows.
      const int share = n / thread_count + (i < n % thread_count ? 1 : 0);
      threads.emplace_back(MuxClientThread, std::cref(options), i, share,
                           &locals[static_cast<size_t>(i)]);
    } else {
      threads.emplace_back(ClientThread, std::cref(options), i,
                           &locals[static_cast<size_t>(i)]);
    }
  }
  for (auto& t : threads) t.join();
  LoadGenStats total;
  for (const LoadGenStats& local : locals) {
    total.requests_sent += local.requests_sent;
    total.ok += local.ok;
    total.aborted += local.aborted;
    total.resource_exhausted += local.resource_exhausted;
    total.other_errors += local.other_errors;
    total.transport_errors += local.transport_errors;
    total.latency_ns.Merge(local.latency_ns);
    // Threads run concurrently: the aggregate window is the longest any
    // thread actually measured (a thread that died early measured less).
    total.elapsed_seconds =
        std::max(total.elapsed_seconds, local.elapsed_seconds);
  }
  return total;
}

}  // namespace server
}  // namespace next700
