#include "server/loadgen.h"

#include <algorithm>
#include <cstring>
#include <deque>
#include <mutex>
#include <thread>
#include <vector>

#include "common/rng.h"
#include "common/stats.h"
#include "server/client.h"
#include "server/procs.h"

namespace next700 {
namespace server {

namespace {

struct PendingRequest {
  uint64_t request_id;
  uint64_t sent_ns;
};

Request MakeRequest(const LoadGenOptions& options, uint64_t request_id,
                    Rng* rng, ZipfGenerator* zipf) {
  Request request;
  request.request_id = request_id;
  WireWriter args(&request.args);
  const double op = rng->NextDouble();
  if (op < options.get_fraction) {
    request.proc_id = kKvGet;
    const uint64_t key = zipf->Next(rng);
    args.PutU64(key);
    if (options.declare_partitions) {
      request.partitions.push_back(
          KvPartitionOf(key, options.num_partitions));
    }
  } else if (op < options.get_fraction + options.put_fraction) {
    request.proc_id = kKvPut;
    const uint64_t key = zipf->Next(rng);
    args.PutU64(key);
    for (uint32_t i = 0; i < options.value_size; ++i) {
      args.PutU8(static_cast<uint8_t>(rng->Next()));
    }
    if (options.declare_partitions) {
      request.partitions.push_back(
          KvPartitionOf(key, options.num_partitions));
    }
  } else {
    request.proc_id = kKvRmw;
    args.PutU16(options.rmw_keys);
    for (uint16_t i = 0; i < options.rmw_keys; ++i) {
      const uint64_t key = zipf->Next(rng);
      args.PutU64(key);
      if (options.declare_partitions) {
        request.partitions.push_back(
            KvPartitionOf(key, options.num_partitions));
      }
    }
  }
  if (!request.partitions.empty()) {
    std::sort(request.partitions.begin(), request.partitions.end());
    request.partitions.erase(
        std::unique(request.partitions.begin(), request.partitions.end()),
        request.partitions.end());
  }
  return request;
}

void CountResponse(const Response& response, LoadGenStats* stats) {
  switch (response.status) {
    case StatusCode::kOk:
      ++stats->ok;
      break;
    case StatusCode::kAborted:
      ++stats->aborted;
      break;
    case StatusCode::kResourceExhausted:
      ++stats->resource_exhausted;
      break;
    default:
      ++stats->other_errors;
      break;
  }
}

void ClientThread(const LoadGenOptions& options, int thread_index,
                  LoadGenStats* local) {
  Rng rng(options.seed + static_cast<uint64_t>(thread_index) * 7919);
  ZipfGenerator zipf(options.num_records, options.theta);
  Client client;
  if (!client.Connect(options.host, options.port).ok()) {
    ++local->transport_errors;
    return;
  }
  const uint64_t start_ns = NowNanos();
  const uint64_t measure_start_ns =
      start_ns + static_cast<uint64_t>(options.warmup_seconds * 1e9);
  const uint64_t end_ns =
      measure_start_ns + static_cast<uint64_t>(options.seconds * 1e9);
  bool measuring = options.warmup_seconds <= 0;

  std::deque<PendingRequest> outstanding;
  uint64_t next_request_id = 1;
  bool broken = false;
  const size_t depth = static_cast<size_t>(
      options.pipeline_depth > 0 ? options.pipeline_depth : 1);

  auto receive_one = [&]() -> bool {
    Response response;
    const Status s = client.Recv(&response, options.deadline_ms);
    if (!s.ok()) {
      ++local->transport_errors;
      return false;
    }
    // The server promises per-connection responses in request order; a
    // mismatch is a protocol violation, not a latency artifact.
    if (outstanding.empty() ||
        response.request_id != outstanding.front().request_id) {
      ++local->transport_errors;
      return false;
    }
    if (measuring) {
      local->latency_ns.Record(NowNanos() - outstanding.front().sent_ns);
      CountResponse(response, local);
    }
    outstanding.pop_front();
    return true;
  };

  while (NowNanos() < end_ns && !broken) {
    if (!measuring && NowNanos() >= measure_start_ns) {
      // Warmup boundary: drop everything counted so far.
      *local = LoadGenStats{};
      measuring = true;
    }
    while (outstanding.size() < depth) {
      const Request request =
          MakeRequest(options, next_request_id++, &rng, &zipf);
      const uint64_t sent_ns = NowNanos();
      if (!client.Send(request).ok()) {
        ++local->transport_errors;
        broken = true;
        break;
      }
      if (measuring) ++local->requests_sent;
      outstanding.push_back(PendingRequest{request.request_id, sent_ns});
    }
    if (broken) break;
    if (!receive_one()) break;
  }
  while (!outstanding.empty()) {
    if (!receive_one()) break;
  }
  local->elapsed_seconds = options.seconds;
}

}  // namespace

Status RunKvAudit(const LoadGenOptions& options, uint64_t min_read_lsn,
                  KvAuditResult* out) {
  *out = KvAuditResult{};
  Client client;
  NEXT700_RETURN_IF_ERROR(client.Connect(options.host, options.port));
  const size_t depth = static_cast<size_t>(
      options.pipeline_depth > 0 ? options.pipeline_depth : 1);
  std::deque<uint64_t> outstanding;  // Keys, in request order.

  auto receive_one = [&]() -> Status {
    Response response;
    NEXT700_RETURN_IF_ERROR(client.Recv(&response, options.deadline_ms));
    const uint64_t key = outstanding.front();
    outstanding.pop_front();
    ++out->keys_checked;
    out->snapshot_lsn = response.commit_lsn;
    if (response.status == StatusCode::kOk) {
      if (response.payload.size() < sizeof(uint64_t)) {
        return Status::Corruption("audit: short kv_get payload");
      }
      uint64_t counter;
      std::memcpy(&counter, response.payload.data(), sizeof(counter));
      out->increment_sum += counter - key;  // Seed counter equals the key.
    } else if (response.status == StatusCode::kNotFound) {
      ++out->missing;
    } else {
      ++out->errors;
    }
    return Status::OK();
  };

  for (uint64_t key = 0; key < options.num_records; ++key) {
    Request request;
    request.request_id = key + 1;
    request.proc_id = kKvGet;
    request.min_read_lsn = min_read_lsn;
    WireWriter args(&request.args);
    args.PutU64(key);
    if (options.declare_partitions) {
      request.partitions.push_back(
          KvPartitionOf(key, options.num_partitions));
    }
    NEXT700_RETURN_IF_ERROR(client.Send(request));
    outstanding.push_back(key);
    if (outstanding.size() >= depth) NEXT700_RETURN_IF_ERROR(receive_one());
  }
  while (!outstanding.empty()) NEXT700_RETURN_IF_ERROR(receive_one());
  return Status::OK();
}

LoadGenStats RunLoadGen(const LoadGenOptions& options) {
  const int n = options.connections > 0 ? options.connections : 1;
  std::vector<LoadGenStats> locals(static_cast<size_t>(n));
  std::vector<std::thread> threads;
  threads.reserve(static_cast<size_t>(n));
  for (int i = 0; i < n; ++i) {
    threads.emplace_back(ClientThread, std::cref(options), i, &locals[i]);
  }
  for (auto& t : threads) t.join();
  LoadGenStats total;
  for (const LoadGenStats& local : locals) {
    total.requests_sent += local.requests_sent;
    total.ok += local.ok;
    total.aborted += local.aborted;
    total.resource_exhausted += local.resource_exhausted;
    total.other_errors += local.other_errors;
    total.transport_errors += local.transport_errors;
    total.latency_ns.Merge(local.latency_ns);
  }
  total.elapsed_seconds = options.seconds;
  return total;
}

}  // namespace server
}  // namespace next700
