#ifndef NEXT700_SERVER_LOADGEN_H_
#define NEXT700_SERVER_LOADGEN_H_

/// \file
/// Multi-threaded load generator for the transaction service: N client
/// threads, one pipelined connection each, driving the KV procedure suite
/// (server/procs.h) with a configurable get/put/rmw mix over Zipf-skewed
/// keys. Per-request latency is measured from Send() to the matching
/// response and aggregated into a shared histogram after the run — the
/// measurement core of the N1 experiment and of `next700_loadgen`.

#include <cstdint>
#include <string>

#include "common/histogram.h"
#include "common/status.h"

namespace next700 {
namespace server {

struct LoadGenOptions {
  std::string host = "127.0.0.1";
  uint16_t port = 0;
  int connections = 4;     // One thread per connection (but see threads).
  int pipeline_depth = 8;  // Requests kept in flight per connection.
  /// 0 = the classic blocking mode, one thread per connection. > 0 caps
  /// the generator at this many threads, each multiplexing its share of
  /// the connections over poll() with nonblocking sockets — the only way
  /// to drive connection counts in the hundreds or thousands without one
  /// OS thread each.
  int threads = 0;
  double warmup_seconds = 0.0;
  double seconds = 5.0;
  /// Key space / partition map; must match the server's KvServiceOptions
  /// and engine partition count.
  uint64_t num_records = 100000;
  uint32_t num_partitions = 1;
  uint32_t value_size = 64;
  /// Declare per-request partition sets (required for correctness-checked
  /// H-Store compositions; harmless elsewhere).
  bool declare_partitions = false;
  /// Op mix: get + put + (remainder) rmw.
  double get_fraction = 0.5;
  double put_fraction = 0.0;
  uint16_t rmw_keys = 4;
  double theta = 0.0;  // Zipf skew over the key space.
  uint64_t seed = 42;
  int64_t deadline_ms = 10000;
  /// Sharded deployments (driving a shard router): with num_shards > 1,
  /// rmw key sets are shard-aware — a `multi_shard_fraction` slice becomes
  /// deliberate cross-shard transactions ({k, k+1}: adjacent keys always
  /// land on different shards under the modulo map), the rest have every
  /// key coerced onto one shard so they take the router's fast path. The
  /// N3 experiment sweeps this fraction. num_shards = 1 leaves the
  /// classic key generation untouched.
  uint32_t num_shards = 1;
  double multi_shard_fraction = 0.0;
};

struct LoadGenStats {
  uint64_t requests_sent = 0;
  uint64_t ok = 0;
  uint64_t aborted = 0;            // kAborted responses (CC conflicts).
  uint64_t resource_exhausted = 0;  // Admission-control rejections.
  uint64_t other_errors = 0;       // Any other non-OK response status.
  uint64_t transport_errors = 0;   // Timeouts, decode failures, conn drops;
                                   // includes in-flight requests whose
                                   // responses a broken connection dropped.
  double elapsed_seconds = 0;
  Histogram latency_ns;

  double Throughput() const {
    return elapsed_seconds > 0
               ? static_cast<double>(ok) / elapsed_seconds
               : 0.0;
  }
};

/// Runs the load and blocks until the measurement window ends and every
/// outstanding request is drained.
LoadGenStats RunLoadGen(const LoadGenOptions& options);

/// Full-keyspace consistency audit: reads every key with kKvGet on one
/// pipelined connection and sums the counter deltas. Seed counters equal
/// their key, and every successful rmw increments each touched counter by
/// one, so `increment_sum` equals the number of increments the store
/// retains — comparing it against the acked count proves (or disproves)
/// that acked work survived a crash or failover. A missing key counts in
/// `missing` and contributes zero.
struct KvAuditResult {
  uint64_t keys_checked = 0;
  uint64_t missing = 0;      // kNotFound responses.
  uint64_t errors = 0;       // Any other non-OK response.
  uint64_t increment_sum = 0;
  /// commit_lsn of the last response: on a replica, the applied snapshot
  /// LSN the audit observed.
  uint64_t snapshot_lsn = 0;
};

/// `min_read_lsn` is stamped on every audit request — against a replica it
/// demands a snapshot at least that fresh (kUnavailable otherwise).
/// Returns non-OK only on transport failure.
Status RunKvAudit(const LoadGenOptions& options, uint64_t min_read_lsn,
                  KvAuditResult* out);

}  // namespace server
}  // namespace next700

#endif  // NEXT700_SERVER_LOADGEN_H_
