#ifndef NEXT700_SERVER_CONNECTION_H_
#define NEXT700_SERVER_CONNECTION_H_

/// \file
/// Per-connection state of the networked transaction service. A Connection
/// is owned and touched exclusively by the server's event-loop thread, so
/// it needs no internal locking; worker threads hand results back through
/// the server's completion queue, never through the connection directly.
///
/// Pipelining contract: a client may have many requests in flight, and the
/// server executes them on concurrent workers, so completions arrive out of
/// order — but responses are released to the socket strictly in request
/// arrival order (like Redis/PostgreSQL pipelining). Each admitted request
/// gets a connection-local sequence number; completed responses park in
/// `completed_` until everything ahead of them has been written. Sequence
/// numbers (not client request ids) key the ordering so a client that
/// reuses request ids cannot confuse the server.
///
/// The outbound side is a queue of whole frames, not a flat byte buffer:
/// every frame that becomes writable in one event-loop batch is gathered
/// into a single writev submission (BuildIovec), so a pipelined client at
/// depth d costs ~1 write syscall per batch instead of d.

#include <sys/uio.h>

#include <cstdint>
#include <deque>
#include <memory>
#include <unordered_map>
#include <vector>

#include "repl/log_shipper.h"
#include "server/protocol.h"

namespace next700 {
namespace server {

class Connection {
 public:
  /// Frames gathered into one writev submission. Linux caps iovcnt at
  /// IOV_MAX (1024); 64 keeps the per-connection iovec array small while
  /// still amortizing a deep pipeline into a handful of syscalls.
  static constexpr int kMaxIov = 64;

  Connection(int fd, uint64_t id) : fd_(fd), id_(id) {}
  Connection(const Connection&) = delete;
  Connection& operator=(const Connection&) = delete;

  int fd() const { return fd_; }
  uint64_t id() const { return id_; }

  FrameDecoder* decoder() { return &decoder_; }

  // --- Handshake / peer identity ----------------------------------------

  /// The peer's Hello has been accepted; any pre-handshake frame other
  /// than Hello closes the connection.
  bool handshaken() const { return handshaken_; }
  void set_handshaken() { handshaken_ = true; }

  PeerRole peer() const { return peer_; }
  void set_peer(PeerRole role) { peer_ = role; }

  /// Shipping cursor for a subscribed replica peer; null until its first
  /// ReplAck names a start LSN.
  repl::LogShipper* shipper() { return shipper_.get(); }
  void set_shipper(std::unique_ptr<repl::LogShipper> shipper) {
    shipper_ = std::move(shipper);
  }

  /// Registers the next request in arrival order; returns its sequence
  /// number, which the eventual Complete() must echo.
  uint64_t AdmitRequest();

  /// Parks the encoded response for `seq`; call FlushOrdered() afterwards.
  void Complete(uint64_t seq, std::vector<uint8_t> encoded_response);

  /// Moves every response that is next in arrival order into the outbound
  /// frame queue. Returns the number of responses released.
  size_t FlushOrdered();

  /// Requests admitted but whose response is not yet released to the
  /// outbound queue.
  size_t pending_responses() const { return order_.size(); }

  // --- Outbound frame queue (event loop only) ----------------------------

  /// Appends a pre-encoded frame directly to the outbound queue, bypassing
  /// the ordered-reply machinery (handshake acks, replication batches —
  /// frames that are not responses to admitted requests).
  void EnqueueRaw(const uint8_t* data, size_t len);

  bool has_pending_writes() const { return out_bytes_ > 0; }
  /// Unsent bytes queued (the replication shipping window measures this).
  size_t write_len() const { return out_bytes_; }

  /// Fills `iov` (capacity kMaxIov) with the unsent prefix of the frame
  /// queue and returns the entry count. The pointed-to bytes stay valid
  /// until the matching ConsumeWritten — the deque never reallocates a
  /// queued frame's storage.
  int BuildIovec(struct iovec* iov) const;

  void ConsumeWritten(size_t n);

  // --- Async submission state (event loop only) --------------------------

  /// A read is outstanding on the io backend for this fd.
  bool read_inflight() const { return read_inflight_; }
  void set_read_inflight(bool v) { read_inflight_ = v; }

  /// A writev is outstanding on the io backend for this fd. The iovec
  /// array passed to the backend is iov() below, so exactly one write may
  /// be in flight per connection.
  bool write_inflight() const { return write_inflight_; }
  void set_write_inflight(bool v) { write_inflight_ = v; }

  /// Backing store for the in-flight writev's iovec entries; must stay
  /// untouched until the completion arrives.
  struct iovec* iov() { return iov_; }

  /// New frames were queued this event-loop batch; a writev submission is
  /// owed at batch end (the server's dirty list).
  bool flush_pending() const { return flush_pending_; }
  void set_flush_pending(bool v) { flush_pending_ = v; }

  /// Read buffer the outstanding SubmitRead targets; allocated lazily on
  /// first use and owned by the connection (it must outlive any in-flight
  /// read, which connection teardown guarantees via CancelFd-before-free).
  uint8_t* EnsureReadBuffer(size_t len);
  uint8_t* read_buf() const { return read_buf_.get(); }
  size_t read_buf_len() const { return read_buf_len_; }

  /// Reads stopped because the server-wide in-flight budget is full.
  bool read_paused() const { return read_paused_; }
  void set_read_paused(bool v) { read_paused_ = v; }

  /// The peer half-closed or a fatal error occurred; close once the write
  /// buffer drains.
  bool draining() const { return draining_; }
  void set_draining() { draining_ = true; }

 private:
  int fd_;
  uint64_t id_;
  FrameDecoder decoder_;
  bool handshaken_ = false;
  PeerRole peer_ = PeerRole::kClient;
  std::unique_ptr<repl::LogShipper> shipper_;
  uint64_t next_seq_ = 1;
  std::deque<uint64_t> order_;
  std::unordered_map<uint64_t, std::vector<uint8_t>> completed_;

  std::deque<std::vector<uint8_t>> out_q_;
  size_t front_off_ = 0;   // Sent prefix of out_q_.front().
  size_t out_bytes_ = 0;   // Total unsent bytes across out_q_.
  struct iovec iov_[kMaxIov];

  std::unique_ptr<uint8_t[]> read_buf_;
  size_t read_buf_len_ = 0;

  bool read_inflight_ = false;
  bool write_inflight_ = false;
  bool flush_pending_ = false;
  bool read_paused_ = false;
  bool draining_ = false;
};

}  // namespace server
}  // namespace next700

#endif  // NEXT700_SERVER_CONNECTION_H_
