#ifndef NEXT700_SERVER_CONNECTION_H_
#define NEXT700_SERVER_CONNECTION_H_

/// \file
/// Per-connection state of the networked transaction service. A Connection
/// is owned and touched exclusively by the server's event-loop thread, so
/// it needs no internal locking; worker threads hand results back through
/// the server's completion queue, never through the connection directly.
///
/// Pipelining contract: a client may have many requests in flight, and the
/// server executes them on concurrent workers, so completions arrive out of
/// order — but responses are released to the socket strictly in request
/// arrival order (like Redis/PostgreSQL pipelining). Each admitted request
/// gets a connection-local sequence number; completed responses park in
/// `completed_` until everything ahead of them has been written. Sequence
/// numbers (not client request ids) key the ordering so a client that
/// reuses request ids cannot confuse the server.

#include <cstdint>
#include <deque>
#include <memory>
#include <unordered_map>
#include <vector>

#include "repl/log_shipper.h"
#include "server/protocol.h"

namespace next700 {
namespace server {

class Connection {
 public:
  Connection(int fd, uint64_t id) : fd_(fd), id_(id) {}
  Connection(const Connection&) = delete;
  Connection& operator=(const Connection&) = delete;

  int fd() const { return fd_; }
  uint64_t id() const { return id_; }

  FrameDecoder* decoder() { return &decoder_; }

  // --- Handshake / peer identity ----------------------------------------

  /// The peer's Hello has been accepted; any pre-handshake frame other
  /// than Hello closes the connection.
  bool handshaken() const { return handshaken_; }
  void set_handshaken() { handshaken_ = true; }

  PeerRole peer() const { return peer_; }
  void set_peer(PeerRole role) { peer_ = role; }

  /// Shipping cursor for a subscribed replica peer; null until its first
  /// ReplAck names a start LSN.
  repl::LogShipper* shipper() { return shipper_.get(); }
  void set_shipper(std::unique_ptr<repl::LogShipper> shipper) {
    shipper_ = std::move(shipper);
  }

  /// Registers the next request in arrival order; returns its sequence
  /// number, which the eventual Complete() must echo.
  uint64_t AdmitRequest();

  /// Parks the encoded response for `seq`; call FlushOrdered() afterwards.
  void Complete(uint64_t seq, std::vector<uint8_t> encoded_response);

  /// Moves every response that is next in arrival order into the socket
  /// write buffer. Returns true if anything became writable.
  bool FlushOrdered();

  /// Requests admitted but whose response is not yet written.
  size_t pending_responses() const { return order_.size(); }

  // --- Socket write buffer (event loop only) ----------------------------

  /// Appends pre-encoded frames directly to the write buffer, bypassing
  /// the ordered-reply machinery (handshake acks, replication batches —
  /// frames that are not responses to admitted requests).
  void EnqueueRaw(const uint8_t* data, size_t len) {
    out_.insert(out_.end(), data, data + len);
  }

  bool has_pending_writes() const { return write_off_ < out_.size(); }
  const uint8_t* write_data() const { return out_.data() + write_off_; }
  size_t write_len() const { return out_.size() - write_off_; }
  void ConsumeWritten(size_t n);

  /// EPOLLOUT currently armed for this connection.
  bool want_write() const { return want_write_; }
  void set_want_write(bool v) { want_write_ = v; }

  /// EPOLLIN dropped because the server-wide in-flight budget is full.
  bool read_paused() const { return read_paused_; }
  void set_read_paused(bool v) { read_paused_ = v; }

  /// The peer half-closed or a fatal error occurred; close once the write
  /// buffer drains.
  bool draining() const { return draining_; }
  void set_draining() { draining_ = true; }

 private:
  int fd_;
  uint64_t id_;
  FrameDecoder decoder_;
  bool handshaken_ = false;
  PeerRole peer_ = PeerRole::kClient;
  std::unique_ptr<repl::LogShipper> shipper_;
  uint64_t next_seq_ = 1;
  std::deque<uint64_t> order_;
  std::unordered_map<uint64_t, std::vector<uint8_t>> completed_;
  std::vector<uint8_t> out_;
  size_t write_off_ = 0;
  bool want_write_ = false;
  bool read_paused_ = false;
  bool draining_ = false;
};

}  // namespace server
}  // namespace next700

#endif  // NEXT700_SERVER_CONNECTION_H_
