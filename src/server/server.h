#ifndef NEXT700_SERVER_SERVER_H_
#define NEXT700_SERVER_SERVER_H_

/// \file
/// The networked transaction service: an epoll-based TCP front-end that
/// exposes a composed Engine as a stored-procedure server.
///
/// Architecture (one process):
///
///   event-loop thread    accept / nonblocking read / frame decode /
///                        dispatch / ordered response write
///   worker pool          executes stored procedures via
///                        Engine::RunProcedureDeferred; per-partition
///                        queue affinity for H-Store compositions
///                        (queue-oriented dispatch), shared run queue
///                        otherwise
///   log flusher          (owned by the engine's LogManager) releases
///                        held responses when their commit LSN becomes
///                        durable — a client never observes a commit the
///                        log could still lose
///
/// Admission control: a bounded server-wide in-flight budget. When the
/// budget fills the event loop stops reading from sockets (backpressure
/// through TCP); requests already decoded that overflow a worker queue are
/// answered with kResourceExhausted instead of growing the queue.

#include <atomic>
#include <cstdint>
#include <deque>
#include <memory>
#include <queue>
#include <string>
#include <thread>
#include <unordered_map>
#include <vector>

#include "common/status.h"
#include "common/thread_safety.h"
#include "server/connection.h"
#include "server/protocol.h"
#include "txn/engine.h"

namespace next700 {
namespace server {

struct ServerOptions {
  std::string host = "127.0.0.1";
  /// 0 binds an ephemeral port; the bound port is available via port().
  uint16_t port = 0;
  /// Worker pool size; the engine must be built with max_threads >= this,
  /// and no other thread may use engine thread ids [0, num_workers).
  int num_workers = 4;
  /// Server-wide budget of decoded-but-unanswered requests. Reads pause
  /// when it fills.
  uint32_t max_inflight = 256;
  /// Per-worker-queue bound; enqueue beyond it answers kResourceExhausted.
  size_t queue_capacity = 1024;
  int listen_backlog = 128;
};

/// Monotonic counters, updated with relaxed atomics (read for reports).
/// The first group is written only by the event-loop thread; the worker-
/// written counter sits on its own cache line so workers never invalidate
/// the loop's line.
struct ServerStats {
  std::atomic<uint64_t> connections_accepted{0};
  std::atomic<uint64_t> requests_dispatched{0};
  std::atomic<uint64_t> responses_sent{0};
  std::atomic<uint64_t> protocol_errors{0};     // Malformed frames/bodies.
  std::atomic<uint64_t> connections_dropped{0};  // Unrecoverable streams.
  std::atomic<uint64_t> admission_rejects{0};   // kResourceExhausted sent.
  NEXT700_CACHE_ALIGNED
  std::atomic<uint64_t> replies_held_durable{0};  // Waited on the flusher.
};

class Server {
 public:
  /// `engine` must outlive the server. Procedures must be registered (and
  /// data loaded) before Start(); registration is not thread-safe.
  Server(Engine* engine, ServerOptions options);
  ~Server();
  Server(const Server&) = delete;
  Server& operator=(const Server&) = delete;

  /// Binds, listens, and starts the event loop + workers.
  Status Start();

  /// Stops accepting, tears down connections and threads. Idempotent.
  /// In-flight transactions finish executing; their replies are dropped.
  void Stop();

  /// Port actually bound (after Start(); useful with port = 0).
  uint16_t port() const { return bound_port_; }

  const ServerStats& stats() const { return stats_; }
  Engine* engine() { return engine_; }

 private:
  struct WorkItem {
    uint64_t conn_id;
    uint64_t seq;
    Request request;
  };

  // Cache-aligned so adjacent queues (each bounced between the event loop
  // and one worker) never share a line through their heap blocks.
  struct NEXT700_CACHE_ALIGNED WorkQueue {
    Mutex mu;
    CondVar cv;
    std::deque<WorkItem> items GUARDED_BY(mu);
    bool stopped GUARDED_BY(mu) = false;
  };

  struct Completion {
    uint64_t conn_id;
    uint64_t seq;
    std::vector<uint8_t> encoded;
  };

  struct HeldReply {
    Lsn lsn;
    Completion completion;
    bool operator>(const HeldReply& other) const { return lsn > other.lsn; }
  };

  void EventLoop();
  void WorkerLoop(int worker_id);

  void HandleAccept();
  void HandleReadable(Connection* conn);
  void HandleWritable(Connection* conn);
  /// Decodes and dispatches buffered frames until the stream is drained,
  /// the budget fills, or the stream turns out to be corrupt.
  void DrainFrames(Connection* conn);
  void DispatchRequest(Connection* conn, Request request);
  /// Answers `seq` on `conn` directly from the event loop (protocol errors,
  /// admission rejects) without a round trip through the worker pool.
  void CompleteInline(Connection* conn, uint64_t seq,
                      const Response& response);
  void FlushConnection(Connection* conn);
  void CloseConnection(Connection* conn);

  /// Worker -> event loop handoff (thread-safe; wakes the loop via eventfd).
  void PushCompletion(Completion completion);
  /// Moves every held reply with lsn <= durable into the completion queue.
  void ReleaseDurable(Lsn durable);
  void DrainCompletions();

  void PauseReads();
  void ResumeReads();
  void UpdateEpoll(Connection* conn);

  int WorkerFor(const Request& request);

  Engine* engine_;
  ServerOptions options_;
  ServerStats stats_;

  int listen_fd_ = -1;
  int epoll_fd_ = -1;
  int wake_fd_ = -1;  // eventfd: completions pending or stop requested.
  uint16_t bound_port_ = 0;
  std::atomic<bool> running_{false};
  std::atomic<bool> stop_requested_{false};

  std::thread loop_thread_;
  std::vector<std::thread> workers_;
  std::vector<std::unique_ptr<WorkQueue>> queues_;
  bool partitioned_dispatch_ = false;
  uint64_t round_robin_ = 0;

  // Event-loop-owned connection table.
  std::unordered_map<uint64_t, std::unique_ptr<Connection>> connections_;
  std::unordered_map<int, uint64_t> conn_id_by_fd_;
  uint64_t next_conn_id_ = 1;
  bool reads_paused_ = false;

  // The admission counter is hit by the event loop (admit) and every worker
  // (release); keep it off the lines holding loop-only state above and the
  // completion queue below.
  NEXT700_CACHE_ALIGNED std::atomic<uint32_t> inflight_{0};

  NEXT700_CACHE_ALIGNED Mutex completions_mu_;
  std::deque<Completion> completions_ GUARDED_BY(completions_mu_);

  // Lock order: held_mu_ before completions_mu_ (ReleaseDurable nests them).
  Mutex held_mu_ ACQUIRED_BEFORE(completions_mu_);
  std::priority_queue<HeldReply, std::vector<HeldReply>,
                      std::greater<HeldReply>>
      held_replies_ GUARDED_BY(held_mu_);
};

}  // namespace server
}  // namespace next700

#endif  // NEXT700_SERVER_SERVER_H_
