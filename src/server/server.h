#ifndef NEXT700_SERVER_SERVER_H_
#define NEXT700_SERVER_SERVER_H_

/// \file
/// The networked transaction service: a submission/completion-queue TCP
/// front-end that exposes a composed Engine as a stored-procedure server.
///
/// Architecture (one process):
///
///   event-loop thread    owns an io::IoBackend (io_uring or batched
///                        epoll); submits accepts/reads/writev batches,
///                        reaps completions, decodes frames, dispatches,
///                        releases ordered responses
///   worker pool          executes stored procedures via
///                        Engine::RunProcedureDeferred; per-partition
///                        queue affinity for H-Store compositions
///                        (queue-oriented dispatch), shared run queue
///                        otherwise
///   log flusher          (owned by the engine's LogManager) releases
///                        held responses when their commit LSN becomes
///                        durable — a client never observes a commit the
///                        log could still lose
///
/// I/O batching: responses completed during one reap batch accumulate in
/// per-connection frame queues; at batch end each dirty connection gets a
/// single writev submission gathering up to Connection::kMaxIov frames.
/// A pipelined client at depth d therefore costs ~1 write syscall per
/// batch instead of d. The same spine carries replication batches and
/// (via the LogManager's private ring) the group-commit flush.
///
/// Admission control: a bounded server-wide in-flight budget. When the
/// budget fills the event loop stops resubmitting socket reads
/// (backpressure through TCP); requests already decoded that overflow a
/// worker queue are answered with kResourceExhausted instead of growing
/// the queue. Replica connections are exempt from read pausing: their
/// acks release held semisync replies, so throttling them could deadlock
/// the budget.
///
/// Replication roles:
///  - Primary: any server with logging enabled accepts PeerRole::kReplica
///    handshakes. A subscribed replica gets durable log bytes streamed as
///    ReplBatch frames from the event loop (shipping window bounded by the
///    connection's write buffer); its ReplAcks feed lag bookkeeping and,
///    in semisync mode, gate commit acknowledgement: a reply is released
///    only once its LSN is durable locally AND on at least one replica
///    (degrading to local-durable-only while zero replicas are subscribed).
///  - Replica: a server constructed with options.snapshot_source serves
///    read-only snapshot transactions at the source's applied LSN. Writes
///    are rejected with kInvalidArgument; reads demanding a fresher
///    snapshot than applied (request.min_read_lsn) get kUnavailable.
///
/// 2PC participant role: a connection that handshakes as
/// PeerRole::kCoordinator may, besides plain Requests (the shard router's
/// single-shard fast path), send Prepare / CommitDecision / AbortDecision /
/// InDoubtQuery frames. A Prepare executes the named procedure on a worker
/// and splits commit at Engine::Prepare: the redo record is durable before
/// the Vote leaves ("prepare durable before vote"), then the worker parks —
/// holding the branch's locks — until the decision frame arrives on the
/// event loop and wakes it (a participant never unilaterally aborts after
/// voting yes; Stop() releases parked workers by aborting in memory only,
/// leaving the gtid in doubt on disk, which presumed abort resolves).
/// Decisions for unknown gtids are acked OK (idempotent redelivery);
/// decisions for gtids recovery left in doubt resolve via
/// Engine::ResolveInDoubt. While recovered in-doubt transactions remain
/// unresolved the server answers Requests and Prepares with kUnavailable —
/// their redo is applied outside concurrency control, so no transaction
/// may run beside it. Coordinator connections are exempt from read pausing
/// like replicas: their decision frames are what un-parks workers, so
/// throttling them could deadlock the budget.

#include <atomic>
#include <cstdint>
#include <deque>
#include <memory>
#include <queue>
#include <string>
#include <thread>
#include <unordered_map>
#include <vector>

#include "common/status.h"
#include "common/thread_safety.h"
#include "io/io_backend.h"
#include "server/connection.h"
#include "server/protocol.h"
#include "txn/engine.h"

namespace next700 {
namespace server {

/// Commit-acknowledgement policy on a primary with subscribed replicas.
enum class ReplAckMode : uint8_t {
  /// Replies release on local durability; replicas tail asynchronously.
  kAsync = 0,
  /// Replies additionally wait until at least one subscribed replica has
  /// the commit LSN durable on its own log. With zero replicas subscribed
  /// the server degrades to async (counted in stats().semisync_degraded)
  /// rather than stalling commits forever.
  kSemisync = 1,
};

/// What a replica-role server reads from: the continuously-applied prefix
/// of the primary's log. Implemented by repl::ReplicaApplier; the server
/// depends only on this interface so src/server never links src/repl.
///
/// ReadLock/ReadUnlock bracket every procedure execution on a replica,
/// sharing among readers but excluding the applier's raw row writes
/// (which bypass concurrency control), so a reader always observes a
/// transaction-consistent prefix of the primary's commit order.
class SnapshotSource {
 public:
  virtual ~SnapshotSource() = default;
  /// LSN through which the log stream has been applied (a frame boundary).
  virtual Lsn applied_lsn() const = 0;
  virtual void ReadLock() = 0;
  virtual void ReadUnlock() = 0;
};

struct ServerOptions {
  std::string host = "127.0.0.1";
  /// 0 binds an ephemeral port; the bound port is available via port().
  uint16_t port = 0;
  /// Worker pool size; the engine must be built with max_threads >= this,
  /// and no other thread may use engine thread ids [0, num_workers).
  int num_workers = 4;
  /// Server-wide budget of decoded-but-unanswered requests. Reads pause
  /// when it fills.
  uint32_t max_inflight = 256;
  /// Per-worker-queue bound; enqueue beyond it answers kResourceExhausted.
  size_t queue_capacity = 1024;
  int listen_backlog = 128;
  /// Network submission backend: kUring demands a raw io_uring (Start()
  /// fails where the kernel lacks one), kEpoll forces the portable
  /// batched-epoll path, kAuto probes uring and falls back.
  io::IoBackendKind io_backend = io::IoBackendKind::kAuto;
  /// Commit acknowledgement policy when replicas subscribe (primary only).
  ReplAckMode repl_ack = ReplAckMode::kAsync;
  /// Non-null makes this a replica-role server: read-only procedures run
  /// against the source's applied snapshot; everything else is rejected.
  /// Must outlive the server. A replica does not re-ship its stream
  /// (no chaining), so kReplica handshakes are refused in this role.
  SnapshotSource* snapshot_source = nullptr;
  /// Crash-harness hook: _exit(42) the process when the Nth successful
  /// Engine::Prepare is durable but its Vote has not been sent — the
  /// window where the participant is in doubt. 0 disables.
  uint64_t crash_after_prepares = 0;
};

/// Monotonic counters, updated with relaxed atomics (read for reports).
/// The first group is written only by the event-loop thread; the worker-
/// written counter sits on its own cache line so workers never invalidate
/// the loop's line.
struct ServerStats {
  std::atomic<uint64_t> connections_accepted{0};
  std::atomic<uint64_t> requests_dispatched{0};
  std::atomic<uint64_t> responses_sent{0};
  std::atomic<uint64_t> protocol_errors{0};     // Malformed frames/bodies.
  std::atomic<uint64_t> connections_dropped{0};  // Unrecoverable streams.
  std::atomic<uint64_t> admission_rejects{0};   // kResourceExhausted sent.
  std::atomic<uint64_t> repl_batches_shipped{0};  // ReplBatch frames sent.
  std::atomic<uint64_t> repl_acks_received{0};
  /// Times semisync fell back to async because the last replica left.
  std::atomic<uint64_t> semisync_degraded{0};
  /// Replica-role rejections: writes, or min_read_lsn ahead of applied.
  std::atomic<uint64_t> snapshot_rejects{0};
  /// 2PC participant traffic (event-loop written): Prepare frames handed
  /// to workers, and decision frames received from coordinators.
  std::atomic<uint64_t> prepares_dispatched{0};
  std::atomic<uint64_t> decisions_received{0};
  /// writev submissions issued, and the frames they gathered: the ratio
  /// is the reply-batching factor (frames/writev >> 1 under pipelining).
  std::atomic<uint64_t> writev_batches{0};
  std::atomic<uint64_t> frames_batched{0};
  NEXT700_CACHE_ALIGNED
  std::atomic<uint64_t> replies_held_durable{0};  // Waited on the flusher.
};

class Server {
 public:
  /// `engine` must outlive the server. Procedures must be registered (and
  /// data loaded) before Start(); registration is not thread-safe.
  Server(Engine* engine, ServerOptions options);
  ~Server();
  Server(const Server&) = delete;
  Server& operator=(const Server&) = delete;

  /// Binds, listens, builds the io backend, and starts the event loop +
  /// workers. Fails if options.io_backend = kUring on a kernel without a
  /// usable io_uring.
  Status Start();

  /// Stops accepting, tears down connections and threads. Idempotent.
  /// In-flight transactions finish executing; their replies are dropped.
  void Stop();

  /// Port actually bound (after Start(); useful with port = 0).
  uint16_t port() const { return bound_port_; }

  const ServerStats& stats() const { return stats_; }
  /// Network-path io counters (null before Start / after Stop).
  const io::IoCounters* io_counters() const {
    return io_ == nullptr ? nullptr : &io_->counters();
  }
  /// Resolved backend: "uring" or "epoll" ("none" before Start).
  const char* io_backend_name() const {
    return io_ == nullptr ? "none" : io_->name();
  }
  Engine* engine() { return engine_; }

 private:
  struct WorkItem {
    uint64_t conn_id;
    uint64_t seq;
    Request request;
    /// 2PC: when set, `prepare` (not `request`) names the work and the
    /// worker answers with a Vote instead of a Response.
    bool is_prepare = false;
    Prepare prepare;
  };

  /// One prepared-but-undecided branch, keyed by gtid in prepared_. The
  /// owning worker parks on prepared_cv_ after registering its entry and
  /// pushing the Vote; the event loop fills in the decision and wakes it.
  struct PreparedTxn {
    bool decided = false;
    bool commit = false;
    /// Where the DecisionAck goes (the admitting connection + sequence of
    /// the decision frame).
    uint64_t decision_conn_id = 0;
    uint64_t decision_seq = 0;
  };

  // Cache-aligned so adjacent queues (each bounced between the event loop
  // and one worker) never share a line through their heap blocks.
  struct NEXT700_CACHE_ALIGNED WorkQueue {
    Mutex mu;
    CondVar cv;
    std::deque<WorkItem> items GUARDED_BY(mu);
    bool stopped GUARDED_BY(mu) = false;
  };

  struct Completion {
    uint64_t conn_id;
    uint64_t seq;
    std::vector<uint8_t> encoded;
  };

  struct HeldReply {
    Lsn lsn;
    Completion completion;
    bool operator>(const HeldReply& other) const { return lsn > other.lsn; }
  };

  void EventLoop();
  void WorkerLoop(int worker_id);

  /// A completed accept: set up the connection and submit its first read.
  void HandleAccept(int fd);
  /// Read/write completions, routed by the conn id packed in user_data.
  void HandleReadComplete(uint64_t conn_id, int32_t result);
  void HandleWriteComplete(uint64_t conn_id, int32_t result);
  /// Submits the (single outstanding) socket read unless paused/draining.
  void StartRead(Connection* conn);
  /// Submits one writev gathering the connection's queued frames. May
  /// close `conn` on submission failure.
  void StartWrite(Connection* conn);
  /// Queues `conn` for a writev submission at the end of the reap batch.
  void MarkDirty(Connection* conn);
  /// Batch end: one writev per dirty connection with queued frames.
  void FlushDirty();

  /// Decodes and dispatches buffered frames until the stream is drained,
  /// the budget fills, or the stream turns out to be corrupt.
  void DrainFrames(Connection* conn);
  /// Pre-handshake frame handling: accepts exactly one valid Hello, sends
  /// the HelloAck, and records the peer role. Returns false if the
  /// connection was closed (mixed-version or non-next700 peer).
  bool HandleHello(Connection* conn, const Frame& frame);
  /// A subscribed replica's cumulative progress ack (or its initial
  /// subscription naming the start LSN). Returns false if closed.
  bool HandleReplAck(Connection* conn, const Frame& frame);
  /// 2PC frames from a coordinator peer (Prepare, decisions, InDoubtQuery).
  /// Each returns false if the connection was closed.
  bool HandleCoordinatorFrame(Connection* conn, const Frame& frame);
  bool HandlePrepare(Connection* conn, const Frame& frame);
  bool HandleDecision(Connection* conn, const Frame& frame);
  bool HandleInDoubtQuery(Connection* conn, const Frame& frame);
  /// Worker-side execution of one Prepare item: run the procedure,
  /// Engine::Prepare, vote, park for the decision, apply it, ack.
  void RunPrepare(int worker_id, WorkItem* item);
  void DispatchRequest(Connection* conn, Request request);
  /// Answers `seq` on `conn` directly from the event loop (protocol errors,
  /// admission rejects) without a round trip through the worker pool.
  void CompleteInline(Connection* conn, uint64_t seq,
                      const Response& response);
  /// Releases ordered responses into the outbound queue and marks the
  /// connection dirty (actual writev happens at batch end / FlushDirty).
  void FlushConnection(Connection* conn);
  /// Closes a draining connection whose work has fully drained. Returns
  /// true if it closed `conn`.
  bool MaybeCloseDrained(Connection* conn);
  void CloseConnection(Connection* conn);

  /// Ships durable log bytes to one subscribed replica until its write
  /// buffer reaches the shipping window or the log is drained. May close
  /// the connection (socket error, or the cursor fell behind the retired
  /// log prefix and the replica must re-bootstrap).
  void ShipToReplica(Connection* conn);
  /// Ships to every subscribed replica (durable-callback wakeups).
  void ShipAll();
  /// Recomputes the semisync watermark (max acked-durable LSN over
  /// subscribed replicas) after an ack or a replica departure.
  void RecomputeSemisyncWatermark();
  /// The LSN up to which replies may be released given local durability
  /// `durable`: durable itself in async/replica roles, min(durable,
  /// semisync watermark) in semisync mode with replicas subscribed.
  /// Callable from any thread.
  Lsn ReleaseWatermark(Lsn durable) const;

  /// Worker -> event loop handoff (thread-safe; wakes the loop through
  /// the backend's Wakeup, the only cross-thread entry point).
  void PushCompletion(Completion completion);
  /// Moves every held reply with lsn <= durable into the completion queue.
  void ReleaseDurable(Lsn durable);
  void DrainCompletions();

  void PauseReads();
  void ResumeReads();

  int WorkerFor(const Request& request);
  int WorkerForPartitions(const std::vector<uint32_t>& partitions);

  Engine* engine_;
  ServerOptions options_;
  ServerStats stats_;

  int listen_fd_ = -1;
  uint16_t bound_port_ = 0;
  std::atomic<bool> running_{false};
  std::atomic<bool> stop_requested_{false};

  /// Submission/completion backend for every socket in this server.
  /// Submit/Reap/CancelFd are event-loop-thread-only; Wakeup() is the
  /// one thread-safe entry (workers, log flusher, Stop()).
  std::unique_ptr<io::IoBackend> io_;

  std::thread loop_thread_;
  std::vector<std::thread> workers_;
  std::vector<std::unique_ptr<WorkQueue>> queues_;
  bool partitioned_dispatch_ = false;
  uint64_t round_robin_ = 0;

  // Event-loop-owned connection table.
  std::unordered_map<uint64_t, std::unique_ptr<Connection>> connections_;
  uint64_t next_conn_id_ = 1;
  bool reads_paused_ = false;
  /// Event-loop-owned latch over the recovered in-doubt gate: true while
  /// Engine::has_in_doubt() might still hold, so the steady state never
  /// takes the engine's in-doubt mutex per request. Transitions only
  /// true -> false.
  bool in_doubt_gate_ = false;
  /// Connections owed a writev submission at batch end (by id: an entry
  /// may refer to a connection closed earlier in the same batch).
  std::vector<uint64_t> dirty_;

  /// Subscribed replicas (shipper attached). Written by the event loop;
  /// read by the flusher callback and workers for semisync gating.
  std::atomic<uint32_t> replica_count_{0};
  /// Max acked-durable LSN across subscribed replicas (event-loop written).
  std::atomic<Lsn> semisync_watermark_{0};
  /// Flusher -> event loop: new durable bytes are ready to ship.
  std::atomic<bool> ship_pending_{false};

  // The admission counter is hit by the event loop (admit) and every worker
  // (release); keep it off the lines holding loop-only state above and the
  // completion queue below.
  NEXT700_CACHE_ALIGNED std::atomic<uint32_t> inflight_{0};

  NEXT700_CACHE_ALIGNED Mutex completions_mu_;
  std::deque<Completion> completions_ GUARDED_BY(completions_mu_);

  // Lock order: held_mu_ before completions_mu_ (ReleaseDurable nests them).
  Mutex held_mu_ ACQUIRED_BEFORE(completions_mu_);
  std::priority_queue<HeldReply, std::vector<HeldReply>,
                      std::greater<HeldReply>>
      held_replies_ GUARDED_BY(held_mu_);

  // Live prepared branches (workers register + park; event loop decides).
  // Never nested with the other server mutexes.
  Mutex prepared_mu_;
  CondVar prepared_cv_;
  std::unordered_map<uint64_t, PreparedTxn> prepared_
      GUARDED_BY(prepared_mu_);
  /// Stop() in progress: parked workers abort in memory (no outcome
  /// record) and exit instead of waiting for decisions that cannot come.
  bool prepared_stop_ GUARDED_BY(prepared_mu_) = false;
  /// Successful prepares so far (the crash_after_prepares trigger).
  std::atomic<uint64_t> prepares_done_{0};
};

}  // namespace server
}  // namespace next700

#endif  // NEXT700_SERVER_SERVER_H_
