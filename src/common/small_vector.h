#ifndef NEXT700_COMMON_SMALL_VECTOR_H_
#define NEXT700_COMMON_SMALL_VECTOR_H_

/// \file
/// Inline-capacity vector for the transaction hot path. The first N elements
/// live inside the object (so a TxnContext's read/write/index-op sets touch
/// no allocator at all for typical OLTP transactions); growth past N spills
/// into the bound Arena when one is attached, and into the heap otherwise.
/// Restricted to trivially copyable element types: growth is a memcpy and
/// clear() never runs destructors, which keeps Reset() between transactions
/// branch-light.
///
/// Arena-spill contract: a spilled buffer is bump-allocated and never freed
/// individually; the owner must ResetToInline() every SmallVector bound to
/// an arena *before* resetting that arena (TxnContext::Reset does exactly
/// this). Heap-backed spill (arena == nullptr) is freed by the destructor as
/// usual.

#include <cstddef>
#include <cstring>
#include <iterator>
#include <type_traits>

#include "common/arena.h"
#include "common/macros.h"

namespace next700 {

template <typename T, size_t N>
class SmallVector {
  static_assert(std::is_trivially_copyable_v<T>,
                "SmallVector is restricted to trivially copyable types");
  static_assert(std::is_trivially_destructible_v<T>,
                "SmallVector never runs element destructors");
  static_assert(alignof(T) <= 8, "Arena spill aligns to 8 bytes");
  static_assert(N > 0, "inline capacity must be nonzero");

 public:
  using value_type = T;
  using iterator = T*;
  using const_iterator = const T*;
  using reverse_iterator = std::reverse_iterator<iterator>;
  using const_reverse_iterator = std::reverse_iterator<const_iterator>;

  SmallVector() = default;
  explicit SmallVector(Arena* arena) : arena_(arena) {}

  SmallVector(const SmallVector&) = delete;
  SmallVector& operator=(const SmallVector&) = delete;

  SmallVector(SmallVector&& other) noexcept { MoveFrom(&other); }
  SmallVector& operator=(SmallVector&& other) noexcept {
    if (this != &other) {
      FreeSpill();
      MoveFrom(&other);
    }
    return *this;
  }

  ~SmallVector() { FreeSpill(); }

  /// Binds (or unbinds) the spill arena. Only valid while inline — callers
  /// set the arena once, right after construction.
  void set_arena(Arena* arena) {
    NEXT700_DCHECK(data_ == InlineData());
    arena_ = arena;
  }

  size_t size() const { return size_; }
  bool empty() const { return size_ == 0; }
  size_t capacity() const { return capacity_; }
  bool spilled() const { return data_ != InlineData(); }

  T* data() { return data_; }
  const T* data() const { return data_; }

  iterator begin() { return data_; }
  iterator end() { return data_ + size_; }
  const_iterator begin() const { return data_; }
  const_iterator end() const { return data_ + size_; }
  reverse_iterator rbegin() { return reverse_iterator(end()); }
  reverse_iterator rend() { return reverse_iterator(begin()); }
  const_reverse_iterator rbegin() const {
    return const_reverse_iterator(end());
  }
  const_reverse_iterator rend() const {
    return const_reverse_iterator(begin());
  }

  T& operator[](size_t i) {
    NEXT700_DCHECK(i < size_);
    return data_[i];
  }
  const T& operator[](size_t i) const {
    NEXT700_DCHECK(i < size_);
    return data_[i];
  }

  T& front() { return (*this)[0]; }
  T& back() { return (*this)[size_ - 1]; }
  const T& front() const { return (*this)[0]; }
  const T& back() const { return (*this)[size_ - 1]; }

  void push_back(const T& value) {
    if (NEXT700_UNLIKELY(size_ == capacity_)) Grow(capacity_ * 2);
    data_[size_++] = value;
  }

  template <typename... Args>
  T& emplace_back(Args&&... args) {
    if (NEXT700_UNLIKELY(size_ == capacity_)) Grow(capacity_ * 2);
    data_[size_] = T{static_cast<Args&&>(args)...};
    return data_[size_++];
  }

  void pop_back() {
    NEXT700_DCHECK(size_ > 0);
    --size_;
  }

  /// Forgets the elements; keeps the current buffer (inline or spilled) so a
  /// refill reuses the capacity without touching any allocator.
  void clear() { size_ = 0; }

  /// clear() plus drop back to inline storage. Heap spill is freed; arena
  /// spill is abandoned for the arena's owner to reclaim (call this before
  /// Arena::Reset — the spilled buffer becomes dangling afterwards).
  void ResetToInline() {
    FreeSpill();
    data_ = InlineData();
    capacity_ = N;
    size_ = 0;
  }

  void reserve(size_t wanted) {
    if (wanted > capacity_) Grow(wanted);
  }

  /// Shrinks or grows to `count`; new elements are value-initialized.
  void resize(size_t count) {
    if (count > capacity_) Grow(count);
    if (count > size_) std::memset(data_ + size_, 0, (count - size_) * sizeof(T));
    size_ = count;
  }

  /// Erases [first, last); tail elements shift down.
  iterator erase(iterator first, iterator last) {
    NEXT700_DCHECK(begin() <= first && first <= last && last <= end());
    if (first != last) {
      std::memmove(first, last,
                   static_cast<size_t>(end() - last) * sizeof(T));
      size_ -= static_cast<size_t>(last - first);
    }
    return first;
  }

  template <typename It>
  void assign(It first, It last) {
    clear();
    for (; first != last; ++first) push_back(*first);
  }

  void append(const T* src, size_t count) {
    if (NEXT700_UNLIKELY(size_ + count > capacity_)) {
      size_t wanted = capacity_ * 2;
      while (wanted < size_ + count) wanted *= 2;
      Grow(wanted);
    }
    std::memcpy(data_ + size_, src, count * sizeof(T));
    size_ += count;
  }

  /// std::vector-compatible range insert, restricted to pos == end() (all
  /// the serializers need).
  template <typename It>
  void insert(iterator pos, It first, It last) {
    NEXT700_DCHECK(pos == end());
    (void)pos;
    for (; first != last; ++first) push_back(*first);
  }

 private:
  T* InlineData() { return reinterpret_cast<T*>(inline_); }
  const T* InlineData() const { return reinterpret_cast<const T*>(inline_); }

  void Grow(size_t wanted) {
    size_t new_cap = capacity_;
    while (new_cap < wanted) new_cap *= 2;
    T* fresh;
    if (arena_ != nullptr) {
      fresh = static_cast<T*>(arena_->Allocate(new_cap * sizeof(T)));
    } else {
      fresh = static_cast<T*>(::operator new(new_cap * sizeof(T)));
    }
    std::memcpy(fresh, data_, size_ * sizeof(T));
    FreeSpill();
    data_ = fresh;
    capacity_ = new_cap;
  }

  void FreeSpill() {
    if (spilled() && arena_ == nullptr) ::operator delete(data_);
  }

  void MoveFrom(SmallVector* other) {
    arena_ = other->arena_;
    size_ = other->size_;
    capacity_ = other->capacity_;
    if (other->spilled()) {
      data_ = other->data_;  // Steal the buffer (heap or arena).
    } else {
      data_ = InlineData();
      capacity_ = N;
      std::memcpy(inline_, other->inline_, other->size_ * sizeof(T));
    }
    other->data_ = other->InlineData();
    other->capacity_ = N;
    other->size_ = 0;
  }

  alignas(alignof(T)) unsigned char inline_[N * sizeof(T)];
  T* data_ = InlineData();
  size_t size_ = 0;
  size_t capacity_ = N;
  Arena* arena_ = nullptr;
};

}  // namespace next700

#endif  // NEXT700_COMMON_SMALL_VECTOR_H_
