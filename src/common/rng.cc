#include "common/rng.h"

#include <cmath>

namespace next700 {

namespace {

uint64_t SplitMix64(uint64_t* state) {
  uint64_t z = (*state += 0x9E3779B97F4A7C15ull);
  z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9ull;
  z = (z ^ (z >> 27)) * 0x94D049BB133111EBull;
  return z ^ (z >> 31);
}

uint64_t Rotl(uint64_t x, int k) { return (x << k) | (x >> (64 - k)); }

}  // namespace

Rng::Rng(uint64_t seed) {
  // Expand the seed through SplitMix64 per the xoshiro authors' advice so a
  // zero seed still yields a valid state.
  uint64_t sm = seed;
  for (auto& s : s_) s = SplitMix64(&sm);
}

uint64_t Rng::Next() {
  const uint64_t result = Rotl(s_[1] * 5, 7) * 9;
  const uint64_t t = s_[1] << 17;
  s_[2] ^= s_[0];
  s_[3] ^= s_[1];
  s_[1] ^= s_[2];
  s_[0] ^= s_[3];
  s_[2] ^= t;
  s_[3] = Rotl(s_[3], 45);
  return result;
}

uint64_t Rng::NextUint64(uint64_t bound) {
  NEXT700_DCHECK(bound > 0);
  // Lemire's multiply-shift bounded generation; the slight modulo bias of a
  // plain % is unacceptable for skew-sensitive experiments.
  __uint128_t product = static_cast<__uint128_t>(Next()) * bound;
  return static_cast<uint64_t>(product >> 64);
}

uint64_t Rng::NextRange(uint64_t lo, uint64_t hi) {
  NEXT700_DCHECK(lo <= hi);
  return lo + NextUint64(hi - lo + 1);
}

double Rng::NextDouble() {
  // 53 random mantissa bits.
  return static_cast<double>(Next() >> 11) * (1.0 / 9007199254740992.0);
}

bool Rng::NextBool(double p) { return NextDouble() < p; }

ZipfGenerator::ZipfGenerator(uint64_t n, double theta, bool scramble)
    : n_(n), theta_(theta), scramble_(scramble) {
  NEXT700_CHECK(n > 0);
  NEXT700_CHECK(theta >= 0.0 && theta < 1.0);
  if (theta_ == 0.0) return;  // Uniform fast path.
  zetan_ = ZetaStatic(n_, theta_);
  zeta2_ = ZetaStatic(2, theta_);
  alpha_ = 1.0 / (1.0 - theta_);
  eta_ = (1.0 - std::pow(2.0 / static_cast<double>(n_), 1.0 - theta_)) /
         (1.0 - zeta2_ / zetan_);
}

double ZipfGenerator::ZetaStatic(uint64_t n, double theta) {
  double sum = 0;
  for (uint64_t i = 1; i <= n; ++i) {
    sum += 1.0 / std::pow(static_cast<double>(i), theta);
  }
  return sum;
}

uint64_t ZipfGenerator::Next(Rng* rng) {
  uint64_t rank;
  if (theta_ == 0.0) {
    rank = rng->NextUint64(n_);
  } else {
    const double u = rng->NextDouble();
    const double uz = u * zetan_;
    if (uz < 1.0) {
      rank = 0;
    } else if (uz < 1.0 + std::pow(0.5, theta_)) {
      rank = 1;
    } else {
      rank = static_cast<uint64_t>(
          static_cast<double>(n_) * std::pow(eta_ * u - eta_ + 1.0, alpha_));
      if (rank >= n_) rank = n_ - 1;
    }
  }
  if (!scramble_) return rank;
  return FnvHash64(rank) % n_;
}

uint64_t NuRand(Rng* rng, uint64_t a, uint64_t x, uint64_t y, uint64_t c) {
  const uint64_t r1 = rng->NextRange(0, a);
  const uint64_t r2 = rng->NextRange(x, y);
  return (((r1 | r2) + c) % (y - x + 1)) + x;
}

}  // namespace next700
