#include "common/arena.h"

#include <cstring>

namespace next700 {

Arena::Arena(size_t block_size) : block_size_(block_size) {
  AddBlock(block_size_);
}

void Arena::AddBlock(size_t min_size) {
  const size_t size = min_size > block_size_ ? min_size : block_size_;
  Block block;
  block.data.reset(new uint8_t[size]);
  block.size = size;
  bytes_reserved_ += size;
  blocks_.push_back(std::move(block));
}

void* Arena::Allocate(size_t size) {
  size = (size + 7) & ~size_t{7};
  if (NEXT700_UNLIKELY(offset_ + size > blocks_[current_block_].size)) {
    // Move to the next block that fits, appending one if needed.
    ++current_block_;
    if (current_block_ == blocks_.size() ||
        blocks_[current_block_].size < size) {
      if (current_block_ < blocks_.size()) {
        // Existing recycled block too small: insert a bigger one before it.
        AddBlock(size);
        std::swap(blocks_[current_block_], blocks_.back());
      } else {
        AddBlock(size);
      }
    }
    offset_ = 0;
  }
  void* out = blocks_[current_block_].data.get() + offset_;
  offset_ += size;
  bytes_used_ += size;
  return out;
}

void* Arena::AllocateCopy(const void* src, size_t size) {
  void* dst = Allocate(size);
  std::memcpy(dst, src, size);
  return dst;
}

void Arena::Reset() {
  current_block_ = 0;
  offset_ = 0;
  bytes_used_ = 0;
}

void Arena::ResetTo(const Mark& mark) {
  NEXT700_DCHECK(mark.block < blocks_.size());
  NEXT700_DCHECK(mark.block < current_block_ ||
                 (mark.block == current_block_ && mark.offset <= offset_));
  NEXT700_DCHECK(mark.used <= bytes_used_);
  current_block_ = mark.block;
  offset_ = mark.offset;
  bytes_used_ = mark.used;
}

}  // namespace next700
