#ifndef NEXT700_COMMON_HISTOGRAM_H_
#define NEXT700_COMMON_HISTOGRAM_H_

/// \file
/// Log-bucketed latency histogram (HdrHistogram-lite). Values are recorded
/// in nanoseconds into buckets with bounded relative error, so percentile
/// queries stay O(buckets) and recording stays branch-light — suitable for
/// per-operation measurement inside the benchmark driver.

#include <cstdint>
#include <string>

#include "common/macros.h"

namespace next700 {

class Histogram {
 public:
  // 64 power-of-two ranges x 16 linear sub-buckets: ~6% relative error.
  static constexpr int kSubBucketBits = 4;
  static constexpr int kSubBuckets = 1 << kSubBucketBits;
  static constexpr int kBucketCount = 64 * kSubBuckets;

  Histogram();

  void Record(uint64_t value);

  /// Adds all samples of `other` into this histogram.
  void Merge(const Histogram& other);

  void Reset();

  uint64_t count() const { return count_; }
  uint64_t min() const { return count_ == 0 ? 0 : min_; }
  uint64_t max() const { return max_; }
  double Mean() const;

  /// Value at quantile q in [0, 1]; returns an upper bound of the bucket
  /// containing the quantile. Returns 0 when empty.
  uint64_t Percentile(double q) const;

  /// Multi-line rendering of common percentiles, for reports.
  std::string Summary() const;

 private:
  static int BucketFor(uint64_t value);
  static uint64_t BucketUpperBound(int bucket);

  uint64_t buckets_[kBucketCount];
  uint64_t count_;
  uint64_t sum_;
  uint64_t min_;
  uint64_t max_;
};

}  // namespace next700

#endif  // NEXT700_COMMON_HISTOGRAM_H_
