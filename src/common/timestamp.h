#ifndef NEXT700_COMMON_TIMESTAMP_H_
#define NEXT700_COMMON_TIMESTAMP_H_

/// \file
/// Pluggable transaction timestamp allocation. The keynote's thesis is that
/// every engine component — even something as small as the timestamp
/// counter — becomes a bottleneck on enough cores, so the allocator is a
/// component like any other:
///   * kAtomic:  one shared fetch-add counter (the textbook design).
///   * kBatched: each thread grabs a block of timestamps at a time,
///               amortizing the shared atomic (trades monotonic interleaving
///               for throughput; still globally unique and per-thread
///               monotonic).

#include <atomic>
#include <cstdint>
#include <memory>

#include "common/macros.h"

namespace next700 {

using Timestamp = uint64_t;

/// Reserved value meaning "no timestamp".
inline constexpr Timestamp kInvalidTimestamp = 0;

enum class TimestampAllocatorKind {
  kAtomic,
  kBatched,
};

/// Thread-safe source of unique, roughly-monotonic transaction timestamps.
class TimestampAllocator {
 public:
  virtual ~TimestampAllocator() = default;

  /// Returns a unique timestamp > kInvalidTimestamp.
  /// `thread_id` identifies the calling worker (for batched allocation).
  virtual Timestamp Allocate(int thread_id) = 0;

  /// A timestamp strictly greater than every timestamp handed out so far.
  virtual Timestamp Horizon() const = 0;

  static std::unique_ptr<TimestampAllocator> Create(
      TimestampAllocatorKind kind, int max_threads);
};

/// Shared atomic counter.
class AtomicTimestampAllocator : public TimestampAllocator {
 public:
  Timestamp Allocate(int thread_id) override {
    (void)thread_id;
    return counter_.fetch_add(1, std::memory_order_relaxed);
  }

  Timestamp Horizon() const override {
    return counter_.load(std::memory_order_relaxed);
  }

 private:
  std::atomic<Timestamp> counter_{1};
};

/// Per-thread blocks carved from a shared counter.
class BatchedTimestampAllocator : public TimestampAllocator {
 public:
  static constexpr Timestamp kBatchSize = 64;

  explicit BatchedTimestampAllocator(int max_threads)
      : slots_(new Slot[max_threads]), max_threads_(max_threads) {}

  Timestamp Allocate(int thread_id) override {
    NEXT700_DCHECK(thread_id >= 0 && thread_id < max_threads_);
    Slot& slot = slots_[thread_id];
    if (slot.next == slot.end) {
      slot.next = counter_.fetch_add(kBatchSize, std::memory_order_relaxed);
      slot.end = slot.next + kBatchSize;
    }
    return slot.next++;
  }

  Timestamp Horizon() const override {
    return counter_.load(std::memory_order_relaxed) + kBatchSize;
  }

 private:
  struct NEXT700_CACHE_ALIGNED Slot {
    Timestamp next = 0;
    Timestamp end = 0;
  };

  std::atomic<Timestamp> counter_{1};
  std::unique_ptr<Slot[]> slots_;
  int max_threads_;
};

}  // namespace next700

#endif  // NEXT700_COMMON_TIMESTAMP_H_
