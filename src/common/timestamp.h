#ifndef NEXT700_COMMON_TIMESTAMP_H_
#define NEXT700_COMMON_TIMESTAMP_H_

/// \file
/// Pluggable transaction timestamp allocation. The keynote's thesis is that
/// every engine component — even something as small as the timestamp
/// counter — becomes a bottleneck on enough cores, so the allocator is a
/// component like any other:
///   * kAtomic:  one shared fetch-add counter (the textbook design).
///   * kBatched: each thread grabs a block of timestamps at a time,
///               amortizing the shared atomic (trades monotonic interleaving
///               for throughput; still globally unique and per-thread
///               monotonic).

#include <atomic>
#include <cstdint>
#include <memory>

#include "common/macros.h"

namespace next700 {

using Timestamp = uint64_t;

/// Reserved value meaning "no timestamp".
inline constexpr Timestamp kInvalidTimestamp = 0;

enum class TimestampAllocatorKind {
  kAtomic,
  kBatched,
};

/// Thread-safe source of unique, roughly-monotonic transaction timestamps.
class TimestampAllocator {
 public:
  virtual ~TimestampAllocator() = default;

  /// Returns a unique timestamp > kInvalidTimestamp.
  /// `thread_id` identifies the calling worker (for batched allocation).
  virtual Timestamp Allocate(int thread_id) = 0;

  /// A timestamp strictly greater than every timestamp handed out so far.
  virtual Timestamp Horizon() const = 0;

  /// Garbage-collection floor: a timestamp at or below everything a future
  /// (or in-flight but not yet registered) transaction could begin with.
  /// For the atomic allocator that is just the counter; for the batched
  /// allocator it also covers every thread's unconsumed reservation, so
  /// version GC stays safe even though handed-out batches run behind the
  /// shared counter.
  virtual Timestamp GcFloor() const = 0;

  /// Conservative lower bound on the value the next Allocate(thread_id)
  /// will return. Multi-version schemes publish this to the active-txn
  /// tracker *before* allocating, closing the window where a freshly
  /// allocated timestamp is not yet visible to the GC watermark.
  virtual Timestamp ActiveLowerBound(int thread_id) const = 0;

  static std::unique_ptr<TimestampAllocator> Create(
      TimestampAllocatorKind kind, int max_threads);
};

/// Shared atomic counter.
class AtomicTimestampAllocator : public TimestampAllocator {
 public:
  Timestamp Allocate(int thread_id) override {
    (void)thread_id;
    return counter_.fetch_add(1, std::memory_order_relaxed);
  }

  Timestamp Horizon() const override {
    return counter_.load(std::memory_order_relaxed);
  }

  Timestamp GcFloor() const override {
    return counter_.load(std::memory_order_seq_cst);
  }

  Timestamp ActiveLowerBound(int thread_id) const override {
    (void)thread_id;
    return counter_.load(std::memory_order_relaxed);
  }

 private:
  std::atomic<Timestamp> counter_{1};
};

/// Per-thread blocks carved from a shared counter.
///
/// GC-safety protocol: a thread's unconsumed reservation [next, end) holds
/// timestamps *below* the shared counter, so multi-version GC cannot use the
/// counter alone as a watermark fallback. Each slot therefore publishes a
/// `floor` — a seq_cst lower bound on every timestamp the slot may still
/// hand out — which is (a) stored from the observed counter *before* the
/// CAS that reserves a batch, so a GcFloor() that reads the counter first
/// and the slot floors second can never overshoot a reservation in flight,
/// and (b) raised back to "none" only after the batch's last timestamp has
/// been consumed, at which point the consumer has already pre-registered
/// that timestamp with the active-txn tracker (see ActiveLowerBound).
class BatchedTimestampAllocator : public TimestampAllocator {
 public:
  static constexpr Timestamp kBatchSize = 64;
  static constexpr Timestamp kNoFloor = ~Timestamp{0};

  explicit BatchedTimestampAllocator(int max_threads)
      : slots_(new Slot[max_threads]), max_threads_(max_threads) {}

  Timestamp Allocate(int thread_id) override {
    NEXT700_DCHECK(thread_id >= 0 && thread_id < max_threads_);
    Slot& slot = slots_[thread_id];
    const Timestamp next = slot.next.load(std::memory_order_relaxed);
    const Timestamp end = slot.end.load(std::memory_order_relaxed);
    if (next == end) {
      // Cover the upcoming reservation before taking it: GcFloor() readers
      // that observe the counter after our CAS are guaranteed (by seq_cst
      // ordering) to also observe this floor.
      Timestamp start = counter_.load(std::memory_order_relaxed);
      slot.floor.store(start, std::memory_order_seq_cst);
      while (!counter_.compare_exchange_weak(start, start + kBatchSize,
                                             std::memory_order_relaxed)) {
        slot.floor.store(start, std::memory_order_seq_cst);
      }
      slot.next.store(start + 1, std::memory_order_relaxed);
      slot.end.store(start + kBatchSize, std::memory_order_relaxed);
      return start;
    }
    slot.next.store(next + 1, std::memory_order_relaxed);
    if (next + 1 == end) {
      // Batch exhausted: stop pinning the watermark. The timestamp just
      // returned is already covered by its transaction's pre-registration.
      slot.floor.store(kNoFloor, std::memory_order_seq_cst);
    }
    return next;
  }

  Timestamp Horizon() const override {
    return counter_.load(std::memory_order_relaxed) + kBatchSize;
  }

  Timestamp GcFloor() const override {
    // Counter first, slot floors second — the reverse order could miss a
    // reservation made between the two reads.
    Timestamp floor = counter_.load(std::memory_order_seq_cst);
    for (int i = 0; i < max_threads_; ++i) {
      const Timestamp f = slots_[i].floor.load(std::memory_order_seq_cst);
      if (f < floor) floor = f;
    }
    return floor;
  }

  Timestamp ActiveLowerBound(int thread_id) const override {
    const Slot& slot = slots_[thread_id];
    const Timestamp next = slot.next.load(std::memory_order_relaxed);
    if (next != slot.end.load(std::memory_order_relaxed)) return next;
    return counter_.load(std::memory_order_relaxed);
  }

 private:
  struct NEXT700_CACHE_ALIGNED Slot {
    std::atomic<Timestamp> next{0};
    std::atomic<Timestamp> end{0};
    std::atomic<Timestamp> floor{kNoFloor};
  };

  std::atomic<Timestamp> counter_{1};
  std::unique_ptr<Slot[]> slots_;
  int max_threads_;
};

}  // namespace next700

#endif  // NEXT700_COMMON_TIMESTAMP_H_
