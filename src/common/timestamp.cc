#include "common/timestamp.h"

namespace next700 {

std::unique_ptr<TimestampAllocator> TimestampAllocator::Create(
    TimestampAllocatorKind kind, int max_threads) {
  switch (kind) {
    case TimestampAllocatorKind::kAtomic:
      return std::make_unique<AtomicTimestampAllocator>();
    case TimestampAllocatorKind::kBatched:
      return std::make_unique<BatchedTimestampAllocator>(max_threads);
  }
  NEXT700_CHECK_MSG(false, "unknown timestamp allocator kind");
  return nullptr;
}

}  // namespace next700
