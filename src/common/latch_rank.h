#ifndef NEXT700_COMMON_LATCH_RANK_H_
#define NEXT700_COMMON_LATCH_RANK_H_

/// \file
/// Debug-mode latch-rank (lock-order) enforcement.
///
/// Every physical latch in the engine belongs to one level of a global
/// hierarchy (catalog above table above index node above lock-manager shard
/// above row). A thread may only acquire latches in descending rank order;
/// acquiring a latch whose rank is *higher* than one it already holds is a
/// potential deadlock-by-inversion and aborts the process with the stack of
/// the offending acquisition plus the recorded acquisition stacks of every
/// latch the thread holds. Acquiring at an *equal* rank is allowed: lock
/// coupling in the B+-tree (parent then child) and the sorted write-set
/// locking of Silo/TicToc both legitimately hold several same-rank latches.
///
/// The checker is compiled in only when NEXT700_DEBUG_LATCH_RANK is defined
/// (the `debug` CMake preset turns it on); otherwise every hook collapses to
/// nothing and latches behave exactly as before. Latches constructed with
/// LatchRank::kNone are exempt — only latches that opted into the hierarchy
/// are tracked, so long-duration logical locks (e.g. H-Store partition
/// locks) stay out of the protocol.

#include <cstdint>

namespace next700 {

/// Hierarchy levels, highest first. Acquisition must be monotonically
/// non-increasing per thread. Gaps leave room for future levels.
enum class LatchRank : int16_t {
  kNone = 0,  // Exempt from checking.

  kCatalog = 700,
  kTablePartition = 600,
  kIndexRoot = 510,  // B+-tree root pointer latch, above interior nodes.
  kIndexNode = 500,
  kLockShard = 400,      // LockManager shard hash-map latch.
  kWaitsForGraph = 350,  // DL_DETECT global graph latch.
  kLockState = 300,      // Per-row LockState queue latch.
  kRow = 200,            // tidword word-locks and the row mini-latch.
};

/// Human-readable name for diagnostics.
const char* LatchRankName(LatchRank rank);

namespace latch_rank {

#ifdef NEXT700_DEBUG_LATCH_RANK

/// Checks `rank` against the calling thread's held set and records the
/// acquisition (with a captured backtrace). Aborts on a rank inversion.
/// kNone acquisitions are ignored.
void OnAcquire(const void* latch, LatchRank rank);

/// Removes `latch` from the calling thread's held set (no-op if absent,
/// which happens for latches acquired before the checker saw them).
void OnRelease(const void* latch);

/// Number of ranked latches the calling thread currently holds (tests).
int HeldCount();

/// Test hook: when set, OnAcquire reports a violation by calling
/// std::abort() after printing, exactly as in production — death tests
/// assert on the printed report.
inline constexpr bool kEnabled = true;

#else

inline void OnAcquire(const void*, LatchRank) {}
inline void OnRelease(const void*) {}
inline int HeldCount() { return 0; }
inline constexpr bool kEnabled = false;

#endif  // NEXT700_DEBUG_LATCH_RANK

}  // namespace latch_rank

}  // namespace next700

#endif  // NEXT700_COMMON_LATCH_RANK_H_
