#include "common/stats.h"

#include <ctime>

namespace next700 {

void RunStats::Add(const ThreadStats& t) {
  commits += t.commits;
  aborts += t.aborts;
  user_aborts += t.user_aborts;
  reads += t.reads;
  writes += t.writes;
  inserts += t.inserts;
  scans += t.scans;
  log_bytes += t.log_bytes;
  lock_waits += t.lock_waits;
  validation_fails += t.validation_fails;
  commit_latency_ns.Merge(t.commit_latency_ns);
}

std::string RunStats::ToString() const {
  char buf[256];
  std::snprintf(buf, sizeof(buf),
                "commits=%llu aborts=%llu abort_ratio=%.3f tput=%.0f txn/s",
                static_cast<unsigned long long>(commits),
                static_cast<unsigned long long>(aborts), AbortRatio(),
                Throughput());
  return buf;
}

uint64_t NowNanos() {
  timespec ts;
  clock_gettime(CLOCK_MONOTONIC, &ts);
  return static_cast<uint64_t>(ts.tv_sec) * 1000000000ull +
         static_cast<uint64_t>(ts.tv_nsec);
}

}  // namespace next700
