#ifndef NEXT700_COMMON_RNG_H_
#define NEXT700_COMMON_RNG_H_

/// \file
/// Fast per-thread pseudo-random number generation plus the skewed
/// distributions used by the workload generators: Zipfian (YCSB-style, with
/// the Gray et al. rejection-free method) and TPC-C NURand.

#include <cstdint>
#include <vector>

#include "common/macros.h"

namespace next700 {

/// xoshiro256** — fast, high-quality, and trivially seedable. One instance
/// per worker thread; not thread-safe.
class Rng {
 public:
  explicit Rng(uint64_t seed = 0x9E3779B97F4A7C15ull);

  /// Uniform 64-bit value.
  uint64_t Next();

  /// Uniform in [0, bound). `bound` must be > 0.
  uint64_t NextUint64(uint64_t bound);

  /// Uniform in [lo, hi] inclusive. Requires lo <= hi.
  uint64_t NextRange(uint64_t lo, uint64_t hi);

  /// Uniform double in [0, 1).
  double NextDouble();

  /// True with probability p (p in [0,1]).
  bool NextBool(double p);

 private:
  uint64_t s_[4];
};

/// Zipfian generator over [0, n) with parameter theta, following the
/// classic Gray et al. "Quickly Generating Billion-Record Synthetic
/// Databases" construction used by YCSB. theta == 0 degenerates to uniform.
///
/// The generator optionally scrambles its output (FNV hash modulo n) so that
/// hot keys are spread across the key space, as YCSB does.
class ZipfGenerator {
 public:
  ZipfGenerator(uint64_t n, double theta, bool scramble = true);

  /// Draws the next key in [0, n).
  uint64_t Next(Rng* rng);

  uint64_t n() const { return n_; }
  double theta() const { return theta_; }

 private:
  static double ZetaStatic(uint64_t n, double theta);

  uint64_t n_;
  double theta_;
  bool scramble_;
  double alpha_ = 0;
  double zetan_ = 0;
  double eta_ = 0;
  double zeta2_ = 0;
};

/// TPC-C NURand(A, x, y) non-uniform generator (clause 2.1.6).
/// C is the per-field constant chosen at load time.
uint64_t NuRand(Rng* rng, uint64_t a, uint64_t x, uint64_t y, uint64_t c);

/// FNV-1a 64-bit hash; used for key scrambling and hash indexes.
inline uint64_t FnvHash64(uint64_t value) {
  uint64_t hash = 0xCBF29CE484222325ull;
  for (int i = 0; i < 8; ++i) {
    hash ^= value & 0xFF;
    hash *= 0x100000001B3ull;
    value >>= 8;
  }
  return hash;
}

}  // namespace next700

#endif  // NEXT700_COMMON_RNG_H_
