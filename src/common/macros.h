#ifndef NEXT700_COMMON_MACROS_H_
#define NEXT700_COMMON_MACROS_H_

/// \file
/// Project-wide helper macros: invariant checks (the project follows the
/// Google style guide and does not use exceptions), branch hints, and
/// cache-line alignment.

#include <cstdio>
#include <cstdlib>

#define NEXT700_LIKELY(x) __builtin_expect(!!(x), 1)
#define NEXT700_UNLIKELY(x) __builtin_expect(!!(x), 0)

/// Size used to pad hot shared structures so they do not false-share.
inline constexpr int kCacheLineSize = 64;

#define NEXT700_CACHE_ALIGNED alignas(kCacheLineSize)

/// Aborts the process when `cond` is false. Used for programming errors and
/// violated invariants; recoverable failures use Status instead.
#define NEXT700_CHECK(cond)                                                  \
  do {                                                                       \
    if (NEXT700_UNLIKELY(!(cond))) {                                         \
      std::fprintf(stderr, "CHECK failed at %s:%d: %s\n", __FILE__,          \
                   __LINE__, #cond);                                         \
      std::abort();                                                          \
    }                                                                        \
  } while (0)

#define NEXT700_CHECK_MSG(cond, msg)                                         \
  do {                                                                       \
    if (NEXT700_UNLIKELY(!(cond))) {                                         \
      std::fprintf(stderr, "CHECK failed at %s:%d: %s (%s)\n", __FILE__,     \
                   __LINE__, #cond, msg);                                    \
      std::abort();                                                          \
    }                                                                        \
  } while (0)

#ifndef NDEBUG
#define NEXT700_DCHECK(cond) NEXT700_CHECK(cond)
#else
#define NEXT700_DCHECK(cond) \
  do {                       \
  } while (0)
#endif

#endif  // NEXT700_COMMON_MACROS_H_
