#ifndef NEXT700_COMMON_MACROS_H_
#define NEXT700_COMMON_MACROS_H_

/// \file
/// Project-wide helper macros: invariant checks (the project follows the
/// Google style guide and does not use exceptions), branch hints, and
/// cache-line alignment.

#include <atomic>
#include <cstddef>
#include <cstdio>
#include <cstdlib>

#define NEXT700_LIKELY(x) __builtin_expect(!!(x), 1)
#define NEXT700_UNLIKELY(x) __builtin_expect(!!(x), 0)

/// Size used to pad hot shared structures so they do not false-share.
inline constexpr int kCacheLineSize = 64;

#define NEXT700_CACHE_ALIGNED alignas(kCacheLineSize)

/// Aborts the process when `cond` is false. Used for programming errors and
/// violated invariants; recoverable failures use Status instead.
#define NEXT700_CHECK(cond)                                                  \
  do {                                                                       \
    if (NEXT700_UNLIKELY(!(cond))) {                                         \
      std::fprintf(stderr, "CHECK failed at %s:%d: %s\n", __FILE__,          \
                   __LINE__, #cond);                                         \
      std::abort();                                                          \
    }                                                                        \
  } while (0)

#define NEXT700_CHECK_MSG(cond, msg)                                         \
  do {                                                                       \
    if (NEXT700_UNLIKELY(!(cond))) {                                         \
      std::fprintf(stderr, "CHECK failed at %s:%d: %s (%s)\n", __FILE__,     \
                   __LINE__, #cond, msg);                                    \
      std::abort();                                                          \
    }                                                                        \
  } while (0)

#ifndef NDEBUG
#define NEXT700_DCHECK(cond) NEXT700_CHECK(cond)
#else
#define NEXT700_DCHECK(cond) \
  do {                       \
  } while (0)
#endif

// ---------------------------------------------------------------------------
// Sanitizer annotations.
//
// The hand-rolled synchronization primitives (SpinLatch, the tidword commit
// protocol, epoch reclamation) implement happens-before edges that
// ThreadSanitizer cannot always infer — most notably the optimistic
// read-then-revalidate protocol of Silo/TicToc, whose data copy is an
// *intentional* race sanctioned by the tidword re-check, and standalone
// std::atomic_thread_fence, which TSan does not model. These macros expand to
// the TSan/ASan runtime hooks under the matching sanitizer and to nothing
// otherwise, so annotated code carries zero cost in normal builds and no
// suppression files are needed.
// ---------------------------------------------------------------------------

#if defined(__has_feature)
#if __has_feature(thread_sanitizer)
#define NEXT700_TSAN_ENABLED 1
#endif
#if __has_feature(address_sanitizer)
#define NEXT700_ASAN_ENABLED 1
#endif
#endif
#if defined(__SANITIZE_THREAD__)
#define NEXT700_TSAN_ENABLED 1
#endif
#if defined(__SANITIZE_ADDRESS__)
#define NEXT700_ASAN_ENABLED 1
#endif

#ifdef NEXT700_TSAN_ENABLED
extern "C" {
void __tsan_acquire(void* addr);
void __tsan_release(void* addr);
void AnnotateIgnoreReadsBegin(const char* file, int line);
void AnnotateIgnoreReadsEnd(const char* file, int line);
}
/// Declares a happens-before edge: every memory effect published with
/// NEXT700_TSAN_RELEASE(addr) happens-before this point.
#define NEXT700_TSAN_ACQUIRE(addr) \
  __tsan_acquire(const_cast<void*>(static_cast<const volatile void*>(addr)))
#define NEXT700_TSAN_RELEASE(addr) \
  __tsan_release(const_cast<void*>(static_cast<const volatile void*>(addr)))
/// Brackets a deliberately racy optimistic read (e.g. the Silo data copy
/// that is validated afterwards by re-reading the tidword). Reads inside the
/// bracket are not reported; writes still are.
#define NEXT700_TSAN_IGNORE_READS_BEGIN() \
  AnnotateIgnoreReadsBegin(__FILE__, __LINE__)
#define NEXT700_TSAN_IGNORE_READS_END() \
  AnnotateIgnoreReadsEnd(__FILE__, __LINE__)
/// TSan does not model standalone fences (GCC warns via -Wtsan and the
/// runtime ignores them), so under TSan this degrades to a compiler-only
/// barrier; the happens-before edge must be (and is) carried by a paired
/// NEXT700_TSAN_ACQUIRE/RELEASE or an atomic access at the call site.
#define NEXT700_ATOMIC_THREAD_FENCE(order) std::atomic_signal_fence(order)
#else
#define NEXT700_TSAN_ACQUIRE(addr) ((void)0)
#define NEXT700_TSAN_RELEASE(addr) ((void)0)
#define NEXT700_TSAN_IGNORE_READS_BEGIN() ((void)0)
#define NEXT700_TSAN_IGNORE_READS_END() ((void)0)
#define NEXT700_ATOMIC_THREAD_FENCE(order) std::atomic_thread_fence(order)
#endif

#ifdef NEXT700_ASAN_ENABLED
extern "C" {
void __asan_poison_memory_region(void const volatile* addr, size_t size);
void __asan_unpoison_memory_region(void const volatile* addr, size_t size);
}
/// Marks quarantined-but-not-yet-freed memory so any touch traps precisely.
#define NEXT700_ASAN_POISON(addr, size) __asan_poison_memory_region(addr, size)
#define NEXT700_ASAN_UNPOISON(addr, size) \
  __asan_unpoison_memory_region(addr, size)
#else
#define NEXT700_ASAN_POISON(addr, size) ((void)0)
#define NEXT700_ASAN_UNPOISON(addr, size) ((void)0)
#endif

#endif  // NEXT700_COMMON_MACROS_H_
