#ifndef NEXT700_COMMON_THREAD_SAFETY_H_
#define NEXT700_COMMON_THREAD_SAFETY_H_

/// \file
/// Clang Thread Safety Analysis (TSA) capability annotations, plus annotated
/// wrappers for the standard mutex/condvar primitives.
///
/// TSA ("C/C++ Thread Safety Analysis", the production checker behind
/// -Wthread-safety) proves lock discipline at compile time: every field
/// marked GUARDED_BY(mu) may only be touched while `mu` is held, every
/// function marked REQUIRES(mu) may only be called with `mu` held, and the
/// ACQUIRE/RELEASE attributes teach the analysis which functions change the
/// set of held capabilities. Unlike TSan, the check covers every path on
/// every build — including interleavings no test ever schedules — which is
/// why the `thread-safety` preset compiles with -Wthread-safety -Werror.
///
/// The macros expand to nothing on compilers without the attributes (GCC),
/// so annotated headers stay portable. Division of labor with the dynamic
/// checkers is documented in DESIGN.md ("Static analysis").
///
/// Escape hatches, used sparingly and always with a justifying comment:
///   * NO_THREAD_SAFETY_ANALYSIS — for protocols TSA cannot express
///     (data-dependent lock sets, locks held across function boundaries).
///   * AssertHeld()-style ASSERT_CAPABILITY members — for "this function
///     returned with the latch held" hand-offs the attribute grammar cannot
///     spell (e.g. HashIndex::LockBucket).

#include <condition_variable>
#include <mutex>

// Rollup feature test: Clang has had these attributes since 3.5; the
// spellings below are the modern capability-based names.
#if defined(__clang__) && !defined(SWIG)
#define NEXT700_THREAD_ANNOTATION__(x) __attribute__((x))
#else
#define NEXT700_THREAD_ANNOTATION__(x)  // no-op
#endif

/// Marks a class as a capability (lockable). The string names the
/// capability kind in diagnostics ("mutex", "latch", ...).
#define CAPABILITY(x) NEXT700_THREAD_ANNOTATION__(capability(x))

/// Marks an RAII class whose constructor acquires and destructor releases.
#define SCOPED_CAPABILITY NEXT700_THREAD_ANNOTATION__(scoped_lockable)

/// The annotated field may only be accessed while holding `x`.
#define GUARDED_BY(x) NEXT700_THREAD_ANNOTATION__(guarded_by(x))

/// The annotated pointer may only be *dereferenced* while holding `x`.
#define PT_GUARDED_BY(x) NEXT700_THREAD_ANNOTATION__(pt_guarded_by(x))

/// Declares latch-order edges for the analysis' deadlock checking.
#define ACQUIRED_BEFORE(...) \
  NEXT700_THREAD_ANNOTATION__(acquired_before(__VA_ARGS__))
#define ACQUIRED_AFTER(...) \
  NEXT700_THREAD_ANNOTATION__(acquired_after(__VA_ARGS__))

/// The function may only be called while holding the capabilities.
#define REQUIRES(...) \
  NEXT700_THREAD_ANNOTATION__(requires_capability(__VA_ARGS__))
#define REQUIRES_SHARED(...) \
  NEXT700_THREAD_ANNOTATION__(requires_shared_capability(__VA_ARGS__))

/// The function acquires the capabilities and does not release them.
#define ACQUIRE(...) \
  NEXT700_THREAD_ANNOTATION__(acquire_capability(__VA_ARGS__))
#define ACQUIRE_SHARED(...) \
  NEXT700_THREAD_ANNOTATION__(acquire_shared_capability(__VA_ARGS__))

/// The function releases capabilities the caller must hold on entry.
#define RELEASE(...) \
  NEXT700_THREAD_ANNOTATION__(release_capability(__VA_ARGS__))
#define RELEASE_SHARED(...) \
  NEXT700_THREAD_ANNOTATION__(release_shared_capability(__VA_ARGS__))
#define RELEASE_GENERIC(...) \
  NEXT700_THREAD_ANNOTATION__(release_generic_capability(__VA_ARGS__))

/// The function acquires the capability iff it returns `b`.
#define TRY_ACQUIRE(b, ...) \
  NEXT700_THREAD_ANNOTATION__(try_acquire_capability(b, __VA_ARGS__))
#define TRY_ACQUIRE_SHARED(b, ...) \
  NEXT700_THREAD_ANNOTATION__(try_acquire_shared_capability(b, __VA_ARGS__))

/// The function must be called *without* the capabilities (non-reentrancy).
#define EXCLUDES(...) NEXT700_THREAD_ANNOTATION__(locks_excluded(__VA_ARGS__))

/// Runtime-assertion functions: tells the analysis the capability is held
/// from here on (the dynamic check is the caller's problem).
#define ASSERT_CAPABILITY(x) NEXT700_THREAD_ANNOTATION__(assert_capability(x))
#define ASSERT_SHARED_CAPABILITY(x) \
  NEXT700_THREAD_ANNOTATION__(assert_shared_capability(x))

/// The function returns a reference to the given capability.
#define RETURN_CAPABILITY(x) NEXT700_THREAD_ANNOTATION__(lock_returned(x))

/// Opts a function out of the analysis entirely. Every use carries a
/// comment explaining why the protocol is beyond the attribute grammar.
#define NO_THREAD_SAFETY_ANALYSIS \
  NEXT700_THREAD_ANNOTATION__(no_thread_safety_analysis)

namespace next700 {

/// std::mutex as an annotated capability. libstdc++ does not annotate
/// std::mutex, so holding one is invisible to the analysis; every mutex in
/// src/ goes through this wrapper (enforced by tools/lint rule
/// `naked-std-mutex`).
class CAPABILITY("mutex") Mutex {
 public:
  Mutex() = default;
  Mutex(const Mutex&) = delete;
  Mutex& operator=(const Mutex&) = delete;

  void Lock() ACQUIRE() { mu_.lock(); }
  void Unlock() RELEASE() { mu_.unlock(); }
  bool TryLock() TRY_ACQUIRE(true) { return mu_.try_lock(); }

  /// Statically asserts the capability is held (e.g. after a hand-off the
  /// analysis cannot follow). No runtime cost.
  void AssertHeld() ASSERT_CAPABILITY(this) {}

 private:
  friend class CondVar;
  std::mutex mu_;
};

/// RAII lock for Mutex (std::lock_guard shape, analysis-visible).
class SCOPED_CAPABILITY MutexLock {
 public:
  explicit MutexLock(Mutex* mu) ACQUIRE(mu) : mu_(mu) { mu_->Lock(); }
  ~MutexLock() RELEASE() { mu_->Unlock(); }
  MutexLock(const MutexLock&) = delete;
  MutexLock& operator=(const MutexLock&) = delete;

 private:
  Mutex* mu_;
};

/// Condition variable over Mutex. No predicate overloads on purpose: a
/// predicate lambda is analyzed as a separate function that does not hold
/// the mutex, so guarded reads inside it would (rightly) fail TSA. Call
/// sites spell the standard `while (!cond) cv.Wait(&mu);` loop instead,
/// keeping every guarded read inside the annotated critical section.
class CondVar {
 public:
  CondVar() = default;
  CondVar(const CondVar&) = delete;
  CondVar& operator=(const CondVar&) = delete;

  /// Atomically releases `mu`, waits, and reacquires before returning.
  /// Spurious wakeups happen; always wait in a condition loop.
  void Wait(Mutex* mu) REQUIRES(mu) {
    std::unique_lock<std::mutex> lk(mu->mu_, std::adopt_lock);
    cv_.wait(lk);
    lk.release();
  }

  /// Timed wait; returns std::cv_status::timeout when `rel_time` elapses
  /// without a notification.
  template <typename Rep, typename Period>
  std::cv_status WaitFor(Mutex* mu,
                         const std::chrono::duration<Rep, Period>& rel_time)
      REQUIRES(mu) {
    std::unique_lock<std::mutex> lk(mu->mu_, std::adopt_lock);
    std::cv_status status = cv_.wait_for(lk, rel_time);
    lk.release();
    return status;
  }

  void NotifyOne() { cv_.notify_one(); }
  void NotifyAll() { cv_.notify_all(); }

 private:
  std::condition_variable cv_;
};

}  // namespace next700

#endif  // NEXT700_COMMON_THREAD_SAFETY_H_
