#ifndef NEXT700_COMMON_EPOCH_H_
#define NEXT700_COMMON_EPOCH_H_

/// \file
/// Epoch-based memory reclamation. Multi-version storage and the B+-tree
/// unlink nodes that concurrent readers may still be traversing; those nodes
/// are retired into the current epoch and physically freed only once every
/// registered thread has moved past that epoch.
///
/// Usage per worker thread:
///   EpochGuard guard(&epoch_manager, thread_id);   // pins current epoch
///   ... access shared structures ...
///   epoch_manager.Retire(thread_id, ptr, deleter); // logical delete
/// The guard's destructor unpins; Maintain() advances the global epoch and
/// frees whatever became unreachable.
///
/// Reclamation validator
/// ---------------------
/// Epoch bugs (retiring a node that is still linked, touching a node after
/// its grace period, retiring outside a pinned region) corrupt memory long
/// after the buggy call, and ThreadSanitizer cannot see them because the
/// freeing itself is properly synchronized. The manager therefore has a
/// validation mode (EpochValidation):
///   * kChecks — Retire aborts unless the calling thread is pinned, and
///     double-retires of the same pointer abort. Default in debug builds
///     (!NDEBUG); free timing is unchanged.
///   * kFull — additionally, objects whose grace period has expired are
///     poisoned (0xEF payload fill, plus ASan region poisoning when built
///     with NEXT700_SANITIZE=address) and parked in a bounded quarantine
///     instead of being freed at once. Before the real free the poison
///     pattern is verified: any byte changed means some thread wrote to the
///     block after its grace period — a use-after-retire — and the process
///     aborts with the offending block. Because the poison fill clobbers the
///     payload before the deleter runs, kFull requires retired objects whose
///     deleter does not read the payload (raw nodes, trivially destructible
///     types); that holds for every retire site in this codebase.
/// Violations print "epoch-reclamation violation: ..." and abort. Switch
/// modes only while no thread is pinned.

#include <atomic>
#include <cstdint>
#include <deque>
#include <functional>
#include <memory>
#include <unordered_set>
#include <vector>

#include "common/latch.h"
#include "common/macros.h"

namespace next700 {

enum class EpochValidation {
  kOff,
  kChecks,  // Retire-while-unpinned and double-retire detection.
  kFull,    // kChecks + poison-and-quarantine use-after-retire detection.
};

class EpochManager {
 public:
  static constexpr uint64_t kIdle = ~uint64_t{0};
  /// Fill pattern for quarantined payloads in kFull validation.
  static constexpr uint8_t kPoisonByte = 0xEF;
  /// Blocks parked in quarantine before the oldest is verified and freed.
  static constexpr size_t kQuarantineDepth = 64;

  explicit EpochManager(int max_threads);
  ~EpochManager();
  EpochManager(const EpochManager&) = delete;
  EpochManager& operator=(const EpochManager&) = delete;

  int max_threads() const { return max_threads_; }

  /// Pins the calling thread to the current global epoch.
  void Enter(int thread_id);

  /// Unpins the calling thread.
  void Exit(int thread_id);

  /// Schedules `ptr` for deletion once all pinned threads move past the
  /// current epoch. Must be called while pinned. Passing `size` lets kFull
  /// validation poison and canary-check the payload; size 0 skips poisoning
  /// for that block.
  void Retire(int thread_id, void* ptr, void (*deleter)(void*),
              size_t size = 0);

  /// Advances the global epoch and frees retired objects that no thread can
  /// still reach. Cheap; call every few transactions.
  void Maintain(int thread_id);

  /// Frees everything still retired or quarantined. Only safe when no
  /// thread is pinned.
  void ReclaimAll();

  uint64_t global_epoch() const {
    return global_epoch_.load(std::memory_order_acquire);
  }

  /// Number of objects waiting to be freed (approximate; for tests/stats).
  /// Excludes the validation quarantine.
  size_t RetiredCount() const;

  /// Blocks currently parked in the kFull-validation quarantine.
  size_t QuarantineCount() const;

  EpochValidation validation() const { return validation_; }
  /// Switches validation mode. Call only while no thread is pinned and no
  /// retired objects are outstanding (e.g. test setup).
  void set_validation(EpochValidation mode) { validation_ = mode; }

 private:
  struct Retired {
    void* ptr;
    void (*deleter)(void*);
    size_t size;
    uint64_t epoch;
  };

  struct Quarantined {
    void* ptr;
    void (*deleter)(void*);
    size_t size;
  };

  struct NEXT700_CACHE_ALIGNED ThreadState {
    std::atomic<uint64_t> pinned_epoch{kIdle};
    std::vector<Retired> retired;
    uint64_t ops_since_maintain = 0;
  };

  /// Smallest epoch any thread is pinned at (kIdle if none).
  uint64_t MinPinnedEpoch() const;

  void ReclaimUpTo(ThreadState* state, uint64_t safe_epoch);

  /// Routes a grace-period-expired block to the deleter or, in kFull
  /// validation, to the poison quarantine.
  void Release(const Retired& retired);

  /// Poisons `q`'s payload and parks it; drains overflow past
  /// kQuarantineDepth (and everything when `drain_all`).
  void QuarantineBlock(const Quarantined& q, bool drain_all);

  /// Verifies the poison canary, then really frees.
  void VerifyAndFree(const Quarantined& q);

  void ForgetLive(void* ptr);

  std::atomic<uint64_t> global_epoch_{1};
  std::unique_ptr<ThreadState[]> threads_;
  int max_threads_;

#ifndef NDEBUG
  EpochValidation validation_ = EpochValidation::kChecks;
#else
  EpochValidation validation_ = EpochValidation::kOff;
#endif

  /// Guards live_retired_ and quarantine_ (validation modes only).
  mutable SpinLatch validate_latch_;
  /// Pointers retired but not yet freed, for double-retire detection.
  std::unordered_set<void*> live_retired_ GUARDED_BY(validate_latch_);
  std::deque<Quarantined> quarantine_ GUARDED_BY(validate_latch_);
};

/// RAII pin on the current epoch.
class EpochGuard {
 public:
  EpochGuard(EpochManager* manager, int thread_id)
      : manager_(manager), thread_id_(thread_id) {
    manager_->Enter(thread_id_);
  }
  ~EpochGuard() { manager_->Exit(thread_id_); }
  EpochGuard(const EpochGuard&) = delete;
  EpochGuard& operator=(const EpochGuard&) = delete;

 private:
  EpochManager* manager_;
  int thread_id_;
};

}  // namespace next700

#endif  // NEXT700_COMMON_EPOCH_H_
