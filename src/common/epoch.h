#ifndef NEXT700_COMMON_EPOCH_H_
#define NEXT700_COMMON_EPOCH_H_

/// \file
/// Epoch-based memory reclamation. Multi-version storage and the B+-tree
/// unlink nodes that concurrent readers may still be traversing; those nodes
/// are retired into the current epoch and physically freed only once every
/// registered thread has moved past that epoch.
///
/// Usage per worker thread:
///   EpochGuard guard(&epoch_manager, thread_id);   // pins current epoch
///   ... access shared structures ...
///   epoch_manager.Retire(thread_id, ptr, deleter); // logical delete
/// The guard's destructor unpins; Maintain() advances the global epoch and
/// frees whatever became unreachable.

#include <atomic>
#include <cstdint>
#include <functional>
#include <memory>
#include <vector>

#include "common/macros.h"

namespace next700 {

class EpochManager {
 public:
  static constexpr uint64_t kIdle = ~uint64_t{0};

  explicit EpochManager(int max_threads);
  ~EpochManager();
  EpochManager(const EpochManager&) = delete;
  EpochManager& operator=(const EpochManager&) = delete;

  int max_threads() const { return max_threads_; }

  /// Pins the calling thread to the current global epoch.
  void Enter(int thread_id);

  /// Unpins the calling thread.
  void Exit(int thread_id);

  /// Schedules `ptr` for deletion once all pinned threads move past the
  /// current epoch. Must be called while pinned.
  void Retire(int thread_id, void* ptr, void (*deleter)(void*));

  /// Advances the global epoch and frees retired objects that no thread can
  /// still reach. Cheap; call every few transactions.
  void Maintain(int thread_id);

  /// Frees everything still retired. Only safe when no thread is pinned.
  void ReclaimAll();

  uint64_t global_epoch() const {
    return global_epoch_.load(std::memory_order_acquire);
  }

  /// Number of objects waiting to be freed (approximate; for tests/stats).
  size_t RetiredCount() const;

 private:
  struct Retired {
    void* ptr;
    void (*deleter)(void*);
    uint64_t epoch;
  };

  struct NEXT700_CACHE_ALIGNED ThreadState {
    std::atomic<uint64_t> pinned_epoch{kIdle};
    std::vector<Retired> retired;
    uint64_t ops_since_maintain = 0;
  };

  /// Smallest epoch any thread is pinned at (kIdle if none).
  uint64_t MinPinnedEpoch() const;

  void ReclaimUpTo(ThreadState* state, uint64_t safe_epoch);

  std::atomic<uint64_t> global_epoch_{1};
  std::unique_ptr<ThreadState[]> threads_;
  int max_threads_;
};

/// RAII pin on the current epoch.
class EpochGuard {
 public:
  EpochGuard(EpochManager* manager, int thread_id)
      : manager_(manager), thread_id_(thread_id) {
    manager_->Enter(thread_id_);
  }
  ~EpochGuard() { manager_->Exit(thread_id_); }
  EpochGuard(const EpochGuard&) = delete;
  EpochGuard& operator=(const EpochGuard&) = delete;

 private:
  EpochManager* manager_;
  int thread_id_;
};

}  // namespace next700

#endif  // NEXT700_COMMON_EPOCH_H_
