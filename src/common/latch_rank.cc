#include "common/latch_rank.h"

#include <cstdio>
#include <cstdlib>

#ifdef NEXT700_DEBUG_LATCH_RANK
#include <execinfo.h>
#endif

namespace next700 {

const char* LatchRankName(LatchRank rank) {
  switch (rank) {
    case LatchRank::kNone:
      return "none";
    case LatchRank::kCatalog:
      return "catalog";
    case LatchRank::kTablePartition:
      return "table-partition";
    case LatchRank::kIndexRoot:
      return "index-root";
    case LatchRank::kIndexNode:
      return "index-node";
    case LatchRank::kLockShard:
      return "lock-shard";
    case LatchRank::kWaitsForGraph:
      return "waits-for-graph";
    case LatchRank::kLockState:
      return "lock-state";
    case LatchRank::kRow:
      return "row";
  }
  return "unknown";
}

#ifdef NEXT700_DEBUG_LATCH_RANK

namespace latch_rank {

namespace {

constexpr int kMaxHeld = 256;  // Bounded by write-set size in practice.
// Acquisition backtrace depth. Captured on every ranked acquisition, so the
// unwind cost is on the latch hot path of debug builds — keep it shallow.
constexpr int kMaxFrames = 8;

struct HeldLatch {
  const void* latch;
  LatchRank rank;
  void* frames[kMaxFrames];
  int num_frames;
};

struct ThreadHeldSet {
  HeldLatch held[kMaxHeld];
  int count = 0;
};

ThreadHeldSet& HeldSet() {
  thread_local ThreadHeldSet set;
  return set;
}

void PrintStack(void* const* frames, int num_frames) {
  backtrace_symbols_fd(const_cast<void* const*>(frames), num_frames,
                       /*fd=*/2);
}

[[noreturn]] void ReportViolation(const ThreadHeldSet& set, const void* latch,
                                  LatchRank rank) {
  std::fprintf(stderr,
               "latch-rank violation: acquiring %s(%d) latch %p while "
               "holding %d ranked latch(es)\n",
               LatchRankName(rank), static_cast<int>(rank), latch, set.count);
  std::fprintf(stderr, "--- acquiring thread stack ---\n");
  void* frames[kMaxFrames];
  const int n = backtrace(frames, kMaxFrames);
  PrintStack(frames, n);
  for (int i = 0; i < set.count; ++i) {
    const HeldLatch& held = set.held[i];
    std::fprintf(stderr, "--- held: %s(%d) latch %p, acquired at ---\n",
                 LatchRankName(held.rank), static_cast<int>(held.rank),
                 held.latch);
    PrintStack(held.frames, held.num_frames);
  }
  std::abort();
}

void Record(ThreadHeldSet* set, const void* latch, LatchRank rank) {
  if (set->count >= kMaxHeld) {
    std::fprintf(stderr,
                 "latch-rank checker: held-latch table overflow (%d)\n",
                 kMaxHeld);
    std::abort();
  }
  HeldLatch& slot = set->held[set->count++];
  slot.latch = latch;
  slot.rank = rank;
  slot.num_frames = backtrace(slot.frames, kMaxFrames);
}

}  // namespace

void OnAcquire(const void* latch, LatchRank rank) {
  if (rank == LatchRank::kNone) return;
  ThreadHeldSet& set = HeldSet();
  // Descending-or-equal acquisition order: the new rank may not exceed any
  // held rank. Equal ranks are legal (lock coupling, sorted write sets).
  for (int i = 0; i < set.count; ++i) {
    if (rank > set.held[i].rank) ReportViolation(set, latch, rank);
  }
  Record(&set, latch, rank);
}

void OnRelease(const void* latch) {
  ThreadHeldSet& set = HeldSet();
  // Releases are usually LIFO but crabbing releases ancestors first, so
  // scan from the top.
  for (int i = set.count - 1; i >= 0; --i) {
    if (set.held[i].latch == latch) {
      set.held[i] = set.held[set.count - 1];
      --set.count;
      return;
    }
  }
}

int HeldCount() { return HeldSet().count; }

}  // namespace latch_rank

#endif  // NEXT700_DEBUG_LATCH_RANK

}  // namespace next700
