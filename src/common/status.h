#ifndef NEXT700_COMMON_STATUS_H_
#define NEXT700_COMMON_STATUS_H_

/// \file
/// RocksDB-style Status error model. The framework does not use exceptions;
/// every recoverable failure is reported through Status (or Result<T>).
/// Transaction aborts are *not* errors: they are reported through
/// TxnOutcome so callers can distinguish "retry me" from "you misused the
/// API".

#include <string>
#include <utility>

#include "common/macros.h"

namespace next700 {

enum class StatusCode : int {
  kOk = 0,
  kNotFound = 1,
  kAlreadyExists = 2,
  kInvalidArgument = 3,
  kAborted = 4,       // Transaction aborted by concurrency control.
  kIOError = 5,       // Log device failures.
  kNotSupported = 6,  // Operation unsupported by the chosen composition.
  kCorruption = 7,    // Recovery found a malformed log.
  kResourceExhausted = 8,
  kUnavailable = 9,        // Server shutting down / connection dropped.
  kDeadlineExceeded = 10,  // Client-side RPC timeout.
};

/// Lightweight status object; cheap to copy in the OK case. Marked
/// [[nodiscard]] so silently dropping an error is a compile error
/// (-Wunused-result is an error under -Werror presets); discard
/// deliberately with a `(void)` cast and a comment saying why.
class [[nodiscard]] Status {
 public:
  Status() : code_(StatusCode::kOk) {}

  static Status OK() { return Status(); }
  static Status NotFound(std::string msg = "") {
    return Status(StatusCode::kNotFound, std::move(msg));
  }
  static Status AlreadyExists(std::string msg = "") {
    return Status(StatusCode::kAlreadyExists, std::move(msg));
  }
  static Status InvalidArgument(std::string msg = "") {
    return Status(StatusCode::kInvalidArgument, std::move(msg));
  }
  static Status Aborted(std::string msg = "") {
    return Status(StatusCode::kAborted, std::move(msg));
  }
  static Status IOError(std::string msg = "") {
    return Status(StatusCode::kIOError, std::move(msg));
  }
  static Status NotSupported(std::string msg = "") {
    return Status(StatusCode::kNotSupported, std::move(msg));
  }
  static Status Corruption(std::string msg = "") {
    return Status(StatusCode::kCorruption, std::move(msg));
  }
  static Status ResourceExhausted(std::string msg = "") {
    return Status(StatusCode::kResourceExhausted, std::move(msg));
  }
  static Status Unavailable(std::string msg = "") {
    return Status(StatusCode::kUnavailable, std::move(msg));
  }
  static Status DeadlineExceeded(std::string msg = "") {
    return Status(StatusCode::kDeadlineExceeded, std::move(msg));
  }

  bool ok() const { return code_ == StatusCode::kOk; }
  bool IsInvalidArgument() const {
    return code_ == StatusCode::kInvalidArgument;
  }
  bool IsNotFound() const { return code_ == StatusCode::kNotFound; }
  bool IsAborted() const { return code_ == StatusCode::kAborted; }
  bool IsAlreadyExists() const { return code_ == StatusCode::kAlreadyExists; }
  bool IsUnavailable() const { return code_ == StatusCode::kUnavailable; }
  bool IsDeadlineExceeded() const {
    return code_ == StatusCode::kDeadlineExceeded;
  }
  bool IsResourceExhausted() const {
    return code_ == StatusCode::kResourceExhausted;
  }
  StatusCode code() const { return code_; }
  const std::string& message() const { return message_; }

  /// Human-readable rendering, e.g. "NotFound: no such key".
  std::string ToString() const;

 private:
  Status(StatusCode code, std::string msg)
      : code_(code), message_(std::move(msg)) {}

  StatusCode code_;
  std::string message_;
};

/// A value-or-Status union, in the spirit of absl::StatusOr. [[nodiscard]]
/// for the same reason as Status: a dropped Result is a dropped error.
template <typename T>
class [[nodiscard]] Result {
 public:
  /*implicit*/ Result(T value) : status_(Status::OK()), value_(std::move(value)) {}
  /*implicit*/ Result(Status status) : status_(std::move(status)) {
    NEXT700_CHECK_MSG(!status_.ok(), "Result(Status) requires a non-OK status");
  }

  bool ok() const { return status_.ok(); }
  const Status& status() const { return status_; }

  const T& value() const& {
    NEXT700_CHECK(ok());
    return value_;
  }
  T& value() & {
    NEXT700_CHECK(ok());
    return value_;
  }
  T&& value() && {
    NEXT700_CHECK(ok());
    return std::move(value_);
  }

 private:
  Status status_;
  T value_{};
};

#define NEXT700_RETURN_IF_ERROR(expr)            \
  do {                                           \
    ::next700::Status _st = (expr);              \
    if (NEXT700_UNLIKELY(!_st.ok())) return _st; \
  } while (0)

}  // namespace next700

#endif  // NEXT700_COMMON_STATUS_H_
