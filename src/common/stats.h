#ifndef NEXT700_COMMON_STATS_H_
#define NEXT700_COMMON_STATS_H_

/// \file
/// Per-thread execution counters and their aggregation. Workers mutate
/// their own (cache-aligned) slot with plain stores; the driver aggregates
/// after the measurement barrier, so no atomics are needed on the hot path.

#include <cstdint>
#include <string>

#include "common/histogram.h"
#include "common/macros.h"

namespace next700 {

/// Counters one worker accumulates during a run.
struct NEXT700_CACHE_ALIGNED ThreadStats {
  uint64_t commits = 0;
  uint64_t aborts = 0;          // CC-induced aborts (retried by the driver).
  uint64_t user_aborts = 0;     // Logic aborts, e.g. TPC-C 1% rollbacks.
  uint64_t reads = 0;
  uint64_t writes = 0;
  uint64_t inserts = 0;
  uint64_t scans = 0;
  uint64_t log_bytes = 0;
  uint64_t lock_waits = 0;      // Times a lock request had to wait.
  uint64_t validation_fails = 0;
  Histogram commit_latency_ns;  // Latency of *successful* transactions.

  void Reset() {
    commits = aborts = user_aborts = reads = writes = inserts = scans = 0;
    log_bytes = lock_waits = validation_fails = 0;
    commit_latency_ns.Reset();
  }
};

/// Aggregate over all workers plus wall-clock context.
struct RunStats {
  uint64_t commits = 0;
  uint64_t aborts = 0;
  uint64_t user_aborts = 0;
  uint64_t reads = 0;
  uint64_t writes = 0;
  uint64_t inserts = 0;
  uint64_t scans = 0;
  uint64_t log_bytes = 0;
  uint64_t lock_waits = 0;
  uint64_t validation_fails = 0;
  double elapsed_seconds = 0;
  Histogram commit_latency_ns;

  void Add(const ThreadStats& t);

  double Throughput() const {
    return elapsed_seconds > 0 ? static_cast<double>(commits) / elapsed_seconds
                               : 0.0;
  }

  /// aborts / (commits + aborts); 0 when idle.
  double AbortRatio() const {
    const uint64_t attempts = commits + aborts;
    return attempts == 0
               ? 0.0
               : static_cast<double>(aborts) / static_cast<double>(attempts);
  }

  std::string ToString() const;
};

/// Monotonic wall clock in nanoseconds.
uint64_t NowNanos();

}  // namespace next700

#endif  // NEXT700_COMMON_STATS_H_
