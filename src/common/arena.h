#ifndef NEXT700_COMMON_ARENA_H_
#define NEXT700_COMMON_ARENA_H_

/// \file
/// Bump-pointer arena for transaction-local allocations (read/write set
/// payloads, undo images). One arena per worker thread; Reset() recycles all
/// blocks between transactions so the steady state allocates nothing.

#include <cstddef>
#include <cstdint>
#include <memory>
#include <vector>

#include "common/macros.h"

namespace next700 {

class Arena {
 public:
  static constexpr size_t kDefaultBlockSize = 64 * 1024;

  explicit Arena(size_t block_size = kDefaultBlockSize);
  Arena(const Arena&) = delete;
  Arena& operator=(const Arena&) = delete;

  /// Allocates `size` bytes aligned to 8. Never fails (aborts on OOM).
  void* Allocate(size_t size);

  /// Allocates and copies `size` bytes from `src`.
  void* AllocateCopy(const void* src, size_t size);

  /// Makes all previously allocated memory reusable without freeing the
  /// underlying blocks.
  void Reset();

  /// A bump position. Everything allocated after Position() was taken can be
  /// handed back with ResetTo(), recycling the tail of the arena while
  /// allocations made before the mark stay live.
  struct Mark {
    size_t block;
    size_t offset;
    size_t used;
  };

  /// Captures the current bump position.
  Mark Position() const { return Mark{current_block_, offset_, bytes_used_}; }

  /// Rewinds to a previously captured Position(). The mark must not be ahead
  /// of the current position, and marks must be released in LIFO order.
  void ResetTo(const Mark& mark);

  /// Total bytes handed out since the last Reset().
  size_t bytes_used() const { return bytes_used_; }

  /// Total bytes of backing blocks currently owned.
  size_t bytes_reserved() const { return bytes_reserved_; }

 private:
  struct Block {
    std::unique_ptr<uint8_t[]> data;
    size_t size;
  };

  void AddBlock(size_t min_size);

  size_t block_size_;
  std::vector<Block> blocks_;
  size_t current_block_ = 0;  // Index of the block being bumped.
  size_t offset_ = 0;         // Bump offset within the current block.
  size_t bytes_used_ = 0;
  size_t bytes_reserved_ = 0;
};

}  // namespace next700

#endif  // NEXT700_COMMON_ARENA_H_
