#include "common/epoch.h"

namespace next700 {

EpochManager::EpochManager(int max_threads)
    : threads_(new ThreadState[max_threads]), max_threads_(max_threads) {}

EpochManager::~EpochManager() { ReclaimAll(); }

void EpochManager::Enter(int thread_id) {
  NEXT700_DCHECK(thread_id >= 0 && thread_id < max_threads_);
  ThreadState& state = threads_[thread_id];
  NEXT700_DCHECK(state.pinned_epoch.load(std::memory_order_relaxed) == kIdle);
  // seq_cst so the pin is visible before any subsequent shared reads.
  state.pinned_epoch.store(global_epoch_.load(std::memory_order_relaxed),
                           std::memory_order_seq_cst);
}

void EpochManager::Exit(int thread_id) {
  threads_[thread_id].pinned_epoch.store(kIdle, std::memory_order_release);
}

void EpochManager::Retire(int thread_id, void* ptr, void (*deleter)(void*)) {
  ThreadState& state = threads_[thread_id];
  state.retired.push_back(
      Retired{ptr, deleter, global_epoch_.load(std::memory_order_relaxed)});
}

uint64_t EpochManager::MinPinnedEpoch() const {
  uint64_t min_epoch = kIdle;
  for (int i = 0; i < max_threads_; ++i) {
    const uint64_t e = threads_[i].pinned_epoch.load(std::memory_order_acquire);
    if (e < min_epoch) min_epoch = e;
  }
  return min_epoch;
}

void EpochManager::ReclaimUpTo(ThreadState* state, uint64_t safe_epoch) {
  auto& retired = state->retired;
  size_t keep = 0;
  for (size_t i = 0; i < retired.size(); ++i) {
    if (retired[i].epoch < safe_epoch) {
      retired[i].deleter(retired[i].ptr);
    } else {
      retired[keep++] = retired[i];
    }
  }
  retired.resize(keep);
}

void EpochManager::Maintain(int thread_id) {
  ThreadState& state = threads_[thread_id];
  global_epoch_.fetch_add(1, std::memory_order_acq_rel);
  if (state.retired.empty()) return;
  const uint64_t min_pinned = MinPinnedEpoch();
  // Anything retired strictly before the minimum pinned epoch is invisible
  // to all current and future pins. If nobody is pinned, everything up to
  // the current epoch is safe.
  const uint64_t safe =
      min_pinned == kIdle ? global_epoch_.load(std::memory_order_relaxed)
                          : min_pinned;
  ReclaimUpTo(&state, safe);
}

void EpochManager::ReclaimAll() {
  for (int i = 0; i < max_threads_; ++i) {
    ThreadState& state = threads_[i];
    for (auto& retired : state.retired) retired.deleter(retired.ptr);
    state.retired.clear();
  }
}

size_t EpochManager::RetiredCount() const {
  size_t total = 0;
  for (int i = 0; i < max_threads_; ++i) total += threads_[i].retired.size();
  return total;
}

}  // namespace next700
