#include "common/epoch.h"

#include <cstdio>
#include <cstring>

namespace next700 {

namespace {

[[noreturn]] void EpochViolation(const char* what, void* ptr) {
  std::fprintf(stderr, "epoch-reclamation violation: %s (block %p)\n", what,
               ptr);
  std::abort();
}

}  // namespace

EpochManager::EpochManager(int max_threads)
    : threads_(new ThreadState[max_threads]), max_threads_(max_threads) {}

EpochManager::~EpochManager() { ReclaimAll(); }

void EpochManager::Enter(int thread_id) {
  NEXT700_DCHECK(thread_id >= 0 && thread_id < max_threads_);
  ThreadState& state = threads_[thread_id];
  NEXT700_DCHECK(state.pinned_epoch.load(std::memory_order_relaxed) == kIdle);
  // seq_cst so the pin is visible before any subsequent shared reads.
  state.pinned_epoch.store(global_epoch_.load(std::memory_order_relaxed),
                           std::memory_order_seq_cst);
}

void EpochManager::Exit(int thread_id) {
  ThreadState& state = threads_[thread_id];
  if (validation_ != EpochValidation::kOff &&
      state.pinned_epoch.load(std::memory_order_relaxed) == kIdle) {
    EpochViolation("Exit() by a thread that is not pinned", nullptr);
  }
  state.pinned_epoch.store(kIdle, std::memory_order_release);
}

void EpochManager::Retire(int thread_id, void* ptr, void (*deleter)(void*),
                          size_t size) {
  ThreadState& state = threads_[thread_id];
  if (validation_ != EpochValidation::kOff) {
    // Retiring while unpinned races the reclaimer: the object could be
    // freed before the caller is done unlinking it.
    if (state.pinned_epoch.load(std::memory_order_relaxed) == kIdle) {
      EpochViolation("Retire() by a thread that is not pinned", ptr);
    }
    SpinLatchGuard guard(&validate_latch_);
    if (!live_retired_.insert(ptr).second) {
      EpochViolation("double retire of the same block", ptr);
    }
  }
  state.retired.push_back(Retired{
      ptr, deleter, size, global_epoch_.load(std::memory_order_relaxed)});
}

uint64_t EpochManager::MinPinnedEpoch() const {
  uint64_t min_epoch = kIdle;
  for (int i = 0; i < max_threads_; ++i) {
    const uint64_t e = threads_[i].pinned_epoch.load(std::memory_order_acquire);
    if (e < min_epoch) min_epoch = e;
  }
  return min_epoch;
}

void EpochManager::ReclaimUpTo(ThreadState* state, uint64_t safe_epoch) {
  auto& retired = state->retired;
  size_t keep = 0;
  for (size_t i = 0; i < retired.size(); ++i) {
    if (retired[i].epoch < safe_epoch) {
      Release(retired[i]);
    } else {
      retired[keep++] = retired[i];
    }
  }
  retired.resize(keep);
}

void EpochManager::Release(const Retired& retired) {
  if (validation_ == EpochValidation::kFull) {
    QuarantineBlock(Quarantined{retired.ptr, retired.deleter, retired.size},
                    /*drain_all=*/false);
    return;
  }
  ForgetLive(retired.ptr);
  retired.deleter(retired.ptr);
}

void EpochManager::QuarantineBlock(const Quarantined& q, bool drain_all) {
  // The grace period has expired: no correct thread can still reach the
  // block, so poisoning it here (unlike at Retire time, when same-epoch
  // readers may legitimately still dereference it) has no false positives.
  if (q.size > 0) {
    std::memset(q.ptr, kPoisonByte, q.size);
    NEXT700_ASAN_POISON(q.ptr, q.size);
  }
  std::vector<Quarantined> overflow;
  {
    SpinLatchGuard guard(&validate_latch_);
    quarantine_.push_back(q);
    const size_t limit = drain_all ? 0 : kQuarantineDepth;
    while (quarantine_.size() > limit) {
      overflow.push_back(quarantine_.front());
      quarantine_.pop_front();
    }
  }
  // Verify and free outside the latch; deleters may do arbitrary work.
  for (const Quarantined& old : overflow) VerifyAndFree(old);
}

void EpochManager::VerifyAndFree(const Quarantined& q) {
  NEXT700_ASAN_UNPOISON(q.ptr, q.size);
  const uint8_t* bytes = static_cast<const uint8_t*>(q.ptr);
  for (size_t i = 0; i < q.size; ++i) {
    if (bytes[i] != kPoisonByte) {
      std::fprintf(stderr,
                   "epoch-reclamation violation: use-after-retire — byte %zu "
                   "of block %p (size %zu) modified after its grace period\n",
                   i, q.ptr, q.size);
      std::abort();
    }
  }
  ForgetLive(q.ptr);
  q.deleter(q.ptr);
}

void EpochManager::ForgetLive(void* ptr) {
  if (validation_ == EpochValidation::kOff) return;
  SpinLatchGuard guard(&validate_latch_);
  live_retired_.erase(ptr);
}

void EpochManager::Maintain(int thread_id) {
  ThreadState& state = threads_[thread_id];
  global_epoch_.fetch_add(1, std::memory_order_acq_rel);
  if (state.retired.empty()) return;
  const uint64_t min_pinned = MinPinnedEpoch();
  // Anything retired strictly before the minimum pinned epoch is invisible
  // to all current and future pins. If nobody is pinned, everything up to
  // the current epoch is safe.
  const uint64_t safe =
      min_pinned == kIdle ? global_epoch_.load(std::memory_order_relaxed)
                          : min_pinned;
  ReclaimUpTo(&state, safe);
}

void EpochManager::ReclaimAll() {
  for (int i = 0; i < max_threads_; ++i) {
    ThreadState& state = threads_[i];
    for (auto& retired : state.retired) {
      ForgetLive(retired.ptr);
      retired.deleter(retired.ptr);
    }
    state.retired.clear();
  }
  // Drain the validation quarantine, canary-checking each block.
  std::vector<Quarantined> drained;
  {
    SpinLatchGuard guard(&validate_latch_);
    drained.assign(quarantine_.begin(), quarantine_.end());
    quarantine_.clear();
  }
  for (const Quarantined& q : drained) VerifyAndFree(q);
}

size_t EpochManager::RetiredCount() const {
  size_t total = 0;
  for (int i = 0; i < max_threads_; ++i) total += threads_[i].retired.size();
  return total;
}

size_t EpochManager::QuarantineCount() const {
  SpinLatchGuard guard(&validate_latch_);
  return quarantine_.size();
}

}  // namespace next700
