#include "common/status.h"

namespace next700 {

namespace {

const char* CodeName(StatusCode code) {
  switch (code) {
    case StatusCode::kOk:
      return "OK";
    case StatusCode::kNotFound:
      return "NotFound";
    case StatusCode::kAlreadyExists:
      return "AlreadyExists";
    case StatusCode::kInvalidArgument:
      return "InvalidArgument";
    case StatusCode::kAborted:
      return "Aborted";
    case StatusCode::kIOError:
      return "IOError";
    case StatusCode::kNotSupported:
      return "NotSupported";
    case StatusCode::kCorruption:
      return "Corruption";
    case StatusCode::kResourceExhausted:
      return "ResourceExhausted";
    case StatusCode::kUnavailable:
      return "Unavailable";
    case StatusCode::kDeadlineExceeded:
      return "DeadlineExceeded";
  }
  return "Unknown";
}

}  // namespace

std::string Status::ToString() const {
  std::string out = CodeName(code_);
  if (!message_.empty()) {
    out += ": ";
    out += message_;
  }
  return out;
}

}  // namespace next700
