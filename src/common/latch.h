#ifndef NEXT700_COMMON_LATCH_H_
#define NEXT700_COMMON_LATCH_H_

/// \file
/// Low-level latches. A "latch" here is a short-duration physical lock that
/// protects in-memory structures; logical transaction locks live in the
/// concurrency-control plugins (src/cc).

#include <atomic>
#include <cstdint>

#include "common/macros.h"

namespace next700 {

/// Pauses the CPU briefly inside spin loops.
inline void CpuRelax() {
#if defined(__x86_64__)
  __builtin_ia32_pause();
#else
  std::atomic_signal_fence(std::memory_order_seq_cst);
#endif
}

/// Test-and-test-and-set spinlock with exponential backoff.
class NEXT700_CACHE_ALIGNED SpinLatch {
 public:
  SpinLatch() = default;
  SpinLatch(const SpinLatch&) = delete;
  SpinLatch& operator=(const SpinLatch&) = delete;

  void Lock() {
    int spins = 1;
    for (;;) {
      if (!locked_.load(std::memory_order_relaxed) &&
          !locked_.exchange(true, std::memory_order_acquire)) {
        return;
      }
      for (int i = 0; i < spins; ++i) CpuRelax();
      if (spins < 1024) spins <<= 1;
    }
  }

  bool TryLock() {
    return !locked_.load(std::memory_order_relaxed) &&
           !locked_.exchange(true, std::memory_order_acquire);
  }

  void Unlock() { locked_.store(false, std::memory_order_release); }

 private:
  std::atomic<bool> locked_{false};
};

/// RAII guard for SpinLatch.
class SpinLatchGuard {
 public:
  explicit SpinLatchGuard(SpinLatch* latch) : latch_(latch) { latch_->Lock(); }
  ~SpinLatchGuard() { latch_->Unlock(); }
  SpinLatchGuard(const SpinLatchGuard&) = delete;
  SpinLatchGuard& operator=(const SpinLatchGuard&) = delete;

 private:
  SpinLatch* latch_;
};

/// Reader-writer spin latch. Writers set the high bit; readers count in the
/// low bits. Writer-preferring to keep B+-tree splits from starving.
class RwSpinLatch {
 public:
  RwSpinLatch() = default;
  RwSpinLatch(const RwSpinLatch&) = delete;
  RwSpinLatch& operator=(const RwSpinLatch&) = delete;

  void LockShared() {
    for (;;) {
      uint32_t cur = word_.load(std::memory_order_relaxed);
      if ((cur & kWriterBit) == 0 &&
          word_.compare_exchange_weak(cur, cur + 1,
                                      std::memory_order_acquire)) {
        return;
      }
      CpuRelax();
    }
  }

  void UnlockShared() { word_.fetch_sub(1, std::memory_order_release); }

  void LockExclusive() {
    // Claim the writer bit, then drain readers.
    for (;;) {
      uint32_t cur = word_.load(std::memory_order_relaxed);
      if ((cur & kWriterBit) == 0 &&
          word_.compare_exchange_weak(cur, cur | kWriterBit,
                                      std::memory_order_acquire)) {
        break;
      }
      CpuRelax();
    }
    while ((word_.load(std::memory_order_acquire) & ~kWriterBit) != 0) {
      CpuRelax();
    }
  }

  void UnlockExclusive() {
    word_.fetch_and(~kWriterBit, std::memory_order_release);
  }

 private:
  static constexpr uint32_t kWriterBit = 1u << 31;
  std::atomic<uint32_t> word_{0};
};

}  // namespace next700

#endif  // NEXT700_COMMON_LATCH_H_
