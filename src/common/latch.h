#ifndef NEXT700_COMMON_LATCH_H_
#define NEXT700_COMMON_LATCH_H_

/// \file
/// Low-level latches. A "latch" here is a short-duration physical lock that
/// protects in-memory structures; logical transaction locks live in the
/// concurrency-control plugins (src/cc).
///
/// Latches may opt into the debug latch-rank checker (latch_rank.h) by being
/// constructed with — or assigned via set_rank() — a LatchRank level; ranked
/// latches have their acquisition order validated per thread when
/// NEXT700_DEBUG_LATCH_RANK is defined.
///
/// Both latches are Clang TSA capabilities (thread_safety.h): fields marked
/// GUARDED_BY a latch are compile-time checked under -Wthread-safety.

#include <atomic>
#include <cstdint>

#include "common/latch_rank.h"
#include "common/macros.h"
#include "common/thread_safety.h"

namespace next700 {

/// Pauses the CPU briefly inside spin loops.
inline void CpuRelax() {
#if defined(__x86_64__)
  __builtin_ia32_pause();
#elif defined(__aarch64__)
  // YIELD is the AArch64 SMT-politeness hint; unlike the old seq_cst signal
  // fence fallback it does not force the compiler to spill and reload
  // everything around the spin loop.
  asm volatile("yield" ::: "memory");
#else
  std::atomic_signal_fence(std::memory_order_seq_cst);
#endif
}

/// Test-and-test-and-set spinlock with exponential backoff.
class CAPABILITY("latch") NEXT700_CACHE_ALIGNED SpinLatch {
 public:
  SpinLatch() = default;
  explicit SpinLatch(LatchRank rank) : rank_(rank) {}
  SpinLatch(const SpinLatch&) = delete;
  SpinLatch& operator=(const SpinLatch&) = delete;

  /// Assigns the hierarchy level post-construction (for array members).
  void set_rank(LatchRank rank) { rank_ = rank; }

  void Lock() ACQUIRE() {
    // Checking before the spin means an ordering violation aborts with a
    // clean report instead of deadlocking first.
    latch_rank::OnAcquire(this, rank_);
    int spins = 1;
    for (;;) {
      if (!locked_.load(std::memory_order_relaxed) &&
          !locked_.exchange(true, std::memory_order_acquire)) {
        NEXT700_TSAN_ACQUIRE(this);
        return;
      }
      for (int i = 0; i < spins; ++i) CpuRelax();
      if (spins < 1024) spins <<= 1;
    }
  }

  bool TryLock() TRY_ACQUIRE(true) {
    if (!locked_.load(std::memory_order_relaxed) &&
        !locked_.exchange(true, std::memory_order_acquire)) {
      latch_rank::OnAcquire(this, rank_);
      NEXT700_TSAN_ACQUIRE(this);
      return true;
    }
    return false;
  }

  void Unlock() RELEASE() {
    latch_rank::OnRelease(this);
    NEXT700_TSAN_RELEASE(this);
    locked_.store(false, std::memory_order_release);
  }

  /// Statically asserts the latch is held — used after a hand-off the
  /// analysis cannot follow (a function that returns with the latch held).
  void AssertHeld() ASSERT_CAPABILITY(this) {}

 private:
  std::atomic<bool> locked_{false};
  LatchRank rank_ = LatchRank::kNone;
};

/// RAII guard for SpinLatch.
class SCOPED_CAPABILITY SpinLatchGuard {
 public:
  explicit SpinLatchGuard(SpinLatch* latch) ACQUIRE(latch) : latch_(latch) {
    latch_->Lock();
  }
  ~SpinLatchGuard() RELEASE() { latch_->Unlock(); }
  SpinLatchGuard(const SpinLatchGuard&) = delete;
  SpinLatchGuard& operator=(const SpinLatchGuard&) = delete;

 private:
  SpinLatch* latch_;
};

/// Reader-writer spin latch. Writers set the high bit; readers count in the
/// low bits. Writer-preferring to keep B+-tree splits from starving.
class CAPABILITY("rwlatch") RwSpinLatch {
 public:
  RwSpinLatch() = default;
  explicit RwSpinLatch(LatchRank rank) : rank_(rank) {}
  RwSpinLatch(const RwSpinLatch&) = delete;
  RwSpinLatch& operator=(const RwSpinLatch&) = delete;

  void set_rank(LatchRank rank) { rank_ = rank; }

  void LockShared() ACQUIRE_SHARED() {
    latch_rank::OnAcquire(this, rank_);
    for (;;) {
      uint32_t cur = word_.load(std::memory_order_relaxed);
      if ((cur & kWriterBit) == 0 &&
          word_.compare_exchange_weak(cur, cur + 1,
                                      std::memory_order_acquire)) {
        NEXT700_TSAN_ACQUIRE(this);
        return;
      }
      CpuRelax();
    }
  }

  void UnlockShared() RELEASE_SHARED() {
    latch_rank::OnRelease(this);
    NEXT700_TSAN_RELEASE(this);
    word_.fetch_sub(1, std::memory_order_release);
  }

  void LockExclusive() ACQUIRE() {
    latch_rank::OnAcquire(this, rank_);
    // Claim the writer bit, then drain readers.
    for (;;) {
      uint32_t cur = word_.load(std::memory_order_relaxed);
      if ((cur & kWriterBit) == 0 &&
          word_.compare_exchange_weak(cur, cur | kWriterBit,
                                      std::memory_order_acquire)) {
        break;
      }
      CpuRelax();
    }
    while ((word_.load(std::memory_order_acquire) & ~kWriterBit) != 0) {
      CpuRelax();
    }
    NEXT700_TSAN_ACQUIRE(this);
  }

  void UnlockExclusive() RELEASE() {
    latch_rank::OnRelease(this);
    NEXT700_TSAN_RELEASE(this);
    word_.fetch_and(~kWriterBit, std::memory_order_release);
  }

 private:
  static constexpr uint32_t kWriterBit = 1u << 31;
  std::atomic<uint32_t> word_{0};
  LatchRank rank_ = LatchRank::kNone;
};

}  // namespace next700

#endif  // NEXT700_COMMON_LATCH_H_
