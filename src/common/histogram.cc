#include "common/histogram.h"

#include <bit>
#include <cstring>

namespace next700 {

Histogram::Histogram() { Reset(); }

void Histogram::Reset() {
  std::memset(buckets_, 0, sizeof(buckets_));
  count_ = 0;
  sum_ = 0;
  min_ = ~uint64_t{0};
  max_ = 0;
}

int Histogram::BucketFor(uint64_t value) {
  if (value < kSubBuckets) return static_cast<int>(value);
  const int msb = 63 - std::countl_zero(value);
  const int shift = msb - kSubBucketBits;
  const int sub = static_cast<int>((value >> shift) & (kSubBuckets - 1));
  // Power ranges start at msb = kSubBucketBits; range 0 is the linear part.
  const int range = msb - kSubBucketBits + 1;
  return range * kSubBuckets + sub;
}

uint64_t Histogram::BucketUpperBound(int bucket) {
  const int range = bucket / kSubBuckets;
  const int sub = bucket % kSubBuckets;
  if (range == 0) return static_cast<uint64_t>(sub);
  const int msb = range + kSubBucketBits - 1;
  const int shift = msb - kSubBucketBits;
  const uint64_t base = uint64_t{1} << msb;
  return base + (static_cast<uint64_t>(sub) + 1) * (uint64_t{1} << shift) - 1;
}

void Histogram::Record(uint64_t value) {
  ++buckets_[BucketFor(value)];
  ++count_;
  sum_ += value;
  if (value < min_) min_ = value;
  if (value > max_) max_ = value;
}

void Histogram::Merge(const Histogram& other) {
  for (int i = 0; i < kBucketCount; ++i) buckets_[i] += other.buckets_[i];
  count_ += other.count_;
  sum_ += other.sum_;
  if (other.count_ > 0) {
    if (other.min_ < min_) min_ = other.min_;
    if (other.max_ > max_) max_ = other.max_;
  }
}

double Histogram::Mean() const {
  return count_ == 0 ? 0.0
                     : static_cast<double>(sum_) / static_cast<double>(count_);
}

uint64_t Histogram::Percentile(double q) const {
  if (count_ == 0) return 0;
  if (q < 0) q = 0;
  if (q > 1) q = 1;
  const uint64_t target =
      static_cast<uint64_t>(q * static_cast<double>(count_ - 1)) + 1;
  uint64_t seen = 0;
  for (int i = 0; i < kBucketCount; ++i) {
    seen += buckets_[i];
    if (seen >= target) {
      uint64_t bound = BucketUpperBound(i);
      return bound > max_ ? max_ : bound;
    }
  }
  return max_;
}

std::string Histogram::Summary() const {
  char buf[256];
  std::snprintf(buf, sizeof(buf),
                "count=%llu mean=%.0f p50=%llu p95=%llu p99=%llu p999=%llu "
                "max=%llu",
                static_cast<unsigned long long>(count_), Mean(),
                static_cast<unsigned long long>(Percentile(0.50)),
                static_cast<unsigned long long>(Percentile(0.95)),
                static_cast<unsigned long long>(Percentile(0.99)),
                static_cast<unsigned long long>(Percentile(0.999)),
                static_cast<unsigned long long>(max()));
  return buf;
}

}  // namespace next700
