#include "cc/timestamp_ordering.h"

#include <algorithm>
#include <cstring>

#include "storage/table.h"

namespace next700 {

Status TimestampOrdering::Begin(TxnContext* txn) {
  txn->set_ts(ts_allocator_->Allocate(txn->thread_id()));
  txn->set_state(TxnState::kActive);
  return Status::OK();
}

Status TimestampOrdering::Read(TxnContext* txn, Row* row, uint8_t* out) {
  if (WriteSetEntry* own = txn->FindWrite(row)) {
    if (own->is_delete) return Status::NotFound("deleted by this txn");
    std::memcpy(out, own->new_data, row->table->schema().row_size());
    return Status::OK();
  }
  RowLatchGuard guard(row);
  if (txn->ts() < row->wts.load(std::memory_order_relaxed)) {
    // A younger transaction already wrote this row; reading it would place
    // us after that writer, contradicting our timestamp.
    return Status::Aborted("T/O read too late");
  }
  if (row->deleted()) return Status::NotFound("row deleted");
  std::memcpy(out, row->data(), row->table->schema().row_size());
  if (row->rts.load(std::memory_order_relaxed) < txn->ts()) {
    row->rts.store(txn->ts(), std::memory_order_relaxed);
  }
  return Status::OK();
}

Status TimestampOrdering::Write(TxnContext* txn, Row* row, uint8_t* data) {
  if (WriteSetEntry* own = txn->FindWrite(row)) {
    if (own->is_delete) return Status::NotFound("deleted by this txn");
    own->new_data = data;
    return Status::OK();
  }
  // Early sanity check to fail fast; authoritative checks re-run under the
  // latch at commit time.
  if (txn->ts() < row->rts.load(std::memory_order_acquire)) {
    return Status::Aborted("T/O write too late (eager check)");
  }
  WriteSetEntry entry;
  entry.row = row;
  entry.new_data = data;
  txn->write_set().push_back(entry);
  return Status::OK();
}

Status TimestampOrdering::Insert(TxnContext* txn, Row* row, uint8_t* data) {
  std::memcpy(row->data(), data, row->table->schema().row_size());
  WriteSetEntry entry;
  entry.row = row;
  entry.new_data = data;
  entry.is_insert = true;
  txn->write_set().push_back(entry);
  return Status::OK();
}

Status TimestampOrdering::Delete(TxnContext* txn, Row* row) {
  if (WriteSetEntry* own = txn->FindWrite(row)) {
    if (own->is_delete) return Status::NotFound("already deleted");
    own->is_delete = true;
    return Status::OK();
  }
  WriteSetEntry entry;
  entry.row = row;
  entry.is_delete = true;
  txn->write_set().push_back(entry);
  return Status::OK();
}

// Thread safety analysis: Validate() latches the (sorted) write set row by
// row and intentionally leaves those latches held until Finalize()/Abort()
// — a transaction-scoped lock set tracked by WriteSetEntry::latched that
// TSA's function-local analysis cannot express, so the three functions
// carrying it opt out below. TSan and the latch-rank checker cover this
// protocol dynamically.

void TimestampOrdering::UnlatchWriteSet(TxnContext* txn)
    NO_THREAD_SAFETY_ANALYSIS {
  for (auto& entry : txn->write_set()) {
    if (entry.latched) {
      entry.row->Unlatch();
      entry.latched = false;
    }
  }
}

Status TimestampOrdering::Validate(TxnContext* txn)
    NO_THREAD_SAFETY_ANALYSIS {
  auto& writes = txn->write_set();
  std::sort(writes.begin(), writes.end(),
            [](const WriteSetEntry& a, const WriteSetEntry& b) {
              return a.row < b.row;
            });
  for (auto& entry : writes) {
    if (entry.is_insert) continue;
    Row* row = entry.row;
    row->Latch();
    entry.latched = true;
    if (row->deleted()) {
      UnlatchWriteSet(txn);
      return Status::Aborted("write target deleted");
    }
    if (txn->ts() < row->rts.load(std::memory_order_relaxed)) {
      UnlatchWriteSet(txn);
      if (txn->stats() != nullptr) ++txn->stats()->validation_fails;
      return Status::Aborted("T/O write too late");
    }
    if (txn->ts() < row->wts.load(std::memory_order_relaxed)) {
      // Thomas write rule: a newer value is already installed; this write
      // can be skipped without violating timestamp order.
      entry.skip_write = true;
    }
  }
  txn->set_state(TxnState::kValidated);
  return Status::OK();
}

void TimestampOrdering::Finalize(TxnContext* txn)
    NO_THREAD_SAFETY_ANALYSIS {
  for (auto& entry : txn->write_set()) {
    Row* row = entry.row;
    if (entry.is_insert) {
      row->wts.store(txn->ts(), std::memory_order_release);
      continue;
    }
    if (!entry.skip_write) {
      if (entry.is_delete) {
        row->set_deleted(true);
      } else {
        std::memcpy(row->data(), entry.new_data,
                    row->table->schema().row_size());
      }
      row->wts.store(txn->ts(), std::memory_order_release);
    }
    row->Unlatch();
    entry.latched = false;
  }
  txn->set_state(TxnState::kCommitted);
}

void TimestampOrdering::Abort(TxnContext* txn) {
  UnlatchWriteSet(txn);
  for (auto& entry : txn->write_set()) {
    if (entry.is_insert) entry.row->table->FreeRow(entry.row);
  }
  txn->set_state(TxnState::kAborted);
}

}  // namespace next700
