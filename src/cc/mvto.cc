#include "cc/mvto.h"

#include <cstring>

#include "storage/table.h"
#include "storage/version_pool.h"

namespace next700 {

namespace {

// Engine-run transactions carry a per-worker recycling pool; standalone
// contexts (unit tests, loaders) fall back to the heap.
Version* NewVersion(TxnContext* txn, uint32_t payload_size) {
  VersionPool* pool = txn->version_pool();
  return pool != nullptr ? pool->Allocate(payload_size)
                         : Version::Allocate(payload_size);
}

void RetireVersion(TxnContext* txn, Version* v) {
  VersionPool* pool = txn->version_pool();
  if (pool != nullptr) {
    pool->Retire(v);
  } else {
    Version::Free(v);
  }
}

}  // namespace

Mvto::Mvto(TimestampAllocator* ts_allocator, ActiveTxnTracker* tracker,
           bool gc_enabled)
    : ts_allocator_(ts_allocator),
      tracker_(tracker),
      gc_enabled_(gc_enabled) {}

Status Mvto::Begin(TxnContext* txn) {
  // Pre-register a lower bound before allocating: a concurrent GC pass can
  // otherwise compute a watermark above the timestamp this transaction is
  // about to receive and free versions it must still read.
  tracker_->SetActive(txn->thread_id(),
                      ts_allocator_->ActiveLowerBound(txn->thread_id()));
  txn->set_ts(ts_allocator_->Allocate(txn->thread_id()));
  tracker_->SetActive(txn->thread_id(), txn->ts());
  txn->set_state(TxnState::kActive);
  return Status::OK();
}

Status Mvto::Read(TxnContext* txn, Row* row, uint8_t* out) {
  if (WriteSetEntry* own = txn->FindWrite(row)) {
    if (own->is_delete) return Status::NotFound("deleted by this txn");
    std::memcpy(out, own->version->data(), row->table->schema().row_size());
    return Status::OK();
  }
  RowLatchGuard guard(row);
  for (Version* v = row->chain.load(std::memory_order_relaxed); v != nullptr;
       v = v->next) {
    if (v->wts > txn->ts()) continue;
    if (!v->committed.load(std::memory_order_acquire) &&
        v->writer_id != txn->txn_id()) {
      // An uncommitted version below our timestamp: reading around it
      // would miss its write if it commits. Abort (no-wait flavour).
      return Status::Aborted("MVTO read blocked by uncommitted version");
    }
    if (v->is_delete) return Status::NotFound("row deleted at this ts");
    if (v->rts.load(std::memory_order_relaxed) < txn->ts()) {
      v->rts.store(txn->ts(), std::memory_order_relaxed);
    }
    std::memcpy(out, v->data(), row->table->schema().row_size());
    txn->read_set().push_back(ReadSetEntry{row, 0, v->wts, 0, v});
    return Status::OK();
  }
  return Status::NotFound("no visible version");
}

Status Mvto::InstallVersion(TxnContext* txn, Row* row, uint8_t* data,
                            bool is_delete) {
  const uint32_t size = row->table->schema().row_size();
  if (WriteSetEntry* own = txn->FindWrite(row)) {
    if (own->is_delete) return Status::NotFound("deleted by this txn");
    if (data != nullptr) std::memcpy(own->version->data(), data, size);
    own->version->is_delete = is_delete;
    own->is_delete = is_delete;
    return Status::OK();
  }
  RowLatchGuard guard(row);
  Version* newest = row->chain.load(std::memory_order_relaxed);
  NEXT700_CHECK_MSG(newest != nullptr, "published MV row without versions");
  if (!newest->committed.load(std::memory_order_acquire)) {
    return Status::Aborted("MVTO write-write conflict (uncommitted head)");
  }
  if (txn->ts() < newest->rts.load(std::memory_order_relaxed)) {
    return Status::Aborted("MVTO write too late (read by newer txn)");
  }
  if (txn->ts() < newest->wts) {
    return Status::Aborted("MVTO write-write conflict (newer version)");
  }
  Version* v = NewVersion(txn, size);
  v->wts = txn->ts();
  v->rts.store(txn->ts(), std::memory_order_relaxed);
  v->writer_id = txn->txn_id();
  v->is_delete = is_delete;
  v->next = newest;
  if (data != nullptr) {
    std::memcpy(v->data(), data, size);
  } else {
    std::memcpy(v->data(), newest->data(), size);  // Tombstone keeps image.
  }
  row->chain.store(v, std::memory_order_release);
  if (gc_enabled_) CollectGarbage(txn, row);

  WriteSetEntry entry;
  entry.row = row;
  entry.new_data = data;
  entry.version = v;
  entry.is_delete = is_delete;
  txn->write_set().push_back(entry);
  return Status::OK();
}

Status Mvto::Write(TxnContext* txn, Row* row, uint8_t* data) {
  return InstallVersion(txn, row, data, /*is_delete=*/false);
}

Status Mvto::Delete(TxnContext* txn, Row* row) {
  return InstallVersion(txn, row, nullptr, /*is_delete=*/true);
}

Status Mvto::Insert(TxnContext* txn, Row* row, uint8_t* data) {
  const uint32_t size = row->table->schema().row_size();
  Version* v = NewVersion(txn, size);
  v->wts = txn->ts();
  v->rts.store(txn->ts(), std::memory_order_relaxed);
  v->writer_id = txn->txn_id();
  std::memcpy(v->data(), data, size);
  row->chain.store(v, std::memory_order_release);

  WriteSetEntry entry;
  entry.row = row;
  entry.new_data = data;
  entry.version = v;
  entry.is_insert = true;
  txn->write_set().push_back(entry);
  return Status::OK();
}

void Mvto::CollectGarbage(TxnContext* txn, Row* row) {
  // GcFloor is evaluated before the tracker scan (see Watermark's contract).
  const Timestamp watermark = tracker_->Watermark(ts_allocator_->GcFloor());
  // Keep every version a transaction at or above the watermark could read:
  // everything newer than the first committed version with wts <= watermark.
  Version* keep = row->chain.load(std::memory_order_relaxed);
  while (keep != nullptr) {
    if (keep->wts <= watermark &&
        keep->committed.load(std::memory_order_acquire)) {
      break;
    }
    keep = keep->next;
  }
  if (keep == nullptr) return;
  Version* dead = keep->next;
  keep->next = nullptr;
  while (dead != nullptr) {
    Version* next = dead->next;
    RetireVersion(txn, dead);
    dead = next;
  }
}

Status Mvto::Validate(TxnContext* txn) {
  // Conflicts were detected at execution time; nothing left to check.
  txn->set_state(TxnState::kValidated);
  return Status::OK();
}

void Mvto::Finalize(TxnContext* txn) {
  for (auto& entry : txn->write_set()) {
    entry.version->committed.store(true, std::memory_order_release);
  }
  tracker_->ClearActive(txn->thread_id());
  txn->set_state(TxnState::kCommitted);
}

void Mvto::Abort(TxnContext* txn) {
  for (auto& entry : txn->write_set()) {
    Row* row = entry.row;
    if (entry.is_insert) {
      // Never published: tear down the private chain and slot.
      Version* v = row->chain.exchange(nullptr, std::memory_order_relaxed);
      while (v != nullptr) {
        Version* next = v->next;
        RetireVersion(txn, v);
        v = next;
      }
      row->table->FreeRow(row);
      continue;
    }
    row->Latch();
    // Our uncommitted version blocks later writers, so it is still the
    // chain head.
    NEXT700_DCHECK(row->chain.load(std::memory_order_relaxed) ==
                   entry.version);
    row->chain.store(entry.version->next, std::memory_order_release);
    row->Unlatch();
    RetireVersion(txn, entry.version);
  }
  tracker_->ClearActive(txn->thread_id());
  txn->set_state(TxnState::kAborted);
}

size_t Mvto::ChainLength(Row* row) {
  RowLatchGuard guard(row);
  size_t n = 0;
  for (Version* v = row->chain.load(std::memory_order_relaxed); v != nullptr;
       v = v->next) {
    ++n;
  }
  return n;
}

}  // namespace next700
