#include "cc/two_phase_locking.h"

#include <cstring>

#include "storage/table.h"

namespace next700 {

DeadlockPolicy TwoPhaseLocking::PolicyFor(CcScheme scheme) {
  switch (scheme) {
    case CcScheme::kNoWait:
      return DeadlockPolicy::kNoWait;
    case CcScheme::kWaitDie:
      return DeadlockPolicy::kWaitDie;
    case CcScheme::kWoundWait:
      return DeadlockPolicy::kWoundWait;
    case CcScheme::kDlDetect:
      return DeadlockPolicy::kDlDetect;
    default:
      NEXT700_CHECK_MSG(false, "not a 2PL scheme");
      return DeadlockPolicy::kNoWait;
  }
}

TwoPhaseLocking::TwoPhaseLocking(CcScheme scheme,
                                 TimestampAllocator* ts_allocator)
    : scheme_(scheme),
      lock_manager_(PolicyFor(scheme)),
      ts_allocator_(ts_allocator) {}

Status TwoPhaseLocking::Begin(TxnContext* txn) {
  // WAIT_DIE needs begin timestamps as priorities; allocating for the other
  // policies too keeps behaviour uniform and measures the allocator as a
  // shared component.
  txn->set_ts(ts_allocator_->Allocate(txn->thread_id()));
  txn->set_state(TxnState::kActive);
  return Status::OK();
}

Status TwoPhaseLocking::Read(TxnContext* txn, Row* row, uint8_t* out) {
  if (NEXT700_UNLIKELY(txn->wounded())) {
    return Status::Aborted("wounded by older transaction");
  }

  if (WriteSetEntry* own = txn->FindWrite(row)) {
    if (own->is_delete) return Status::NotFound("deleted by this txn");
    std::memcpy(out, own->new_data, row->table->schema().row_size());
    return Status::OK();
  }
  NEXT700_RETURN_IF_ERROR(lock_manager_.Acquire(txn, row, LockMode::kShared));
  if (row->deleted()) return Status::NotFound("row deleted");
  std::memcpy(out, row->data(), row->table->schema().row_size());
  txn->read_set().push_back(ReadSetEntry{row, 0, 0, 0, nullptr});
  return Status::OK();
}

Status TwoPhaseLocking::ReadForUpdate(TxnContext* txn, Row* row,
                                      uint8_t* out) {
  if (NEXT700_UNLIKELY(txn->wounded())) {
    return Status::Aborted("wounded by older transaction");
  }

  if (WriteSetEntry* own = txn->FindWrite(row)) {
    if (own->is_delete) return Status::NotFound("deleted by this txn");
    std::memcpy(out, own->new_data, row->table->schema().row_size());
    return Status::OK();
  }
  // Exclusive up front: the caller told us a write follows, so grabbing S
  // first would only manufacture upgrade deadlocks.
  NEXT700_RETURN_IF_ERROR(
      lock_manager_.Acquire(txn, row, LockMode::kExclusive));
  if (row->deleted()) return Status::NotFound("row deleted");
  std::memcpy(out, row->data(), row->table->schema().row_size());
  txn->read_set().push_back(ReadSetEntry{row, 0, 0, 0, nullptr});
  return Status::OK();
}

Status TwoPhaseLocking::Write(TxnContext* txn, Row* row, uint8_t* data) {
  if (NEXT700_UNLIKELY(txn->wounded())) {
    return Status::Aborted("wounded by older transaction");
  }

  const uint32_t size = row->table->schema().row_size();
  if (WriteSetEntry* own = txn->FindWrite(row)) {
    if (own->is_delete) return Status::NotFound("deleted by this txn");
    std::memcpy(own->new_data, data, size);
    if (own->applied) std::memcpy(row->data(), data, size);
    return Status::OK();
  }
  NEXT700_RETURN_IF_ERROR(
      lock_manager_.Acquire(txn, row, LockMode::kExclusive));
  if (row->deleted()) return Status::NotFound("row deleted");
  WriteSetEntry entry;
  entry.row = row;
  entry.new_data = data;
  entry.undo_data =
      static_cast<uint8_t*>(txn->arena()->AllocateCopy(row->data(), size));
  std::memcpy(row->data(), data, size);
  entry.applied = true;
  txn->write_set().push_back(entry);
  return Status::OK();
}

Status TwoPhaseLocking::Insert(TxnContext* txn, Row* row, uint8_t* data) {
  // The row is private until the engine publishes it through the indexes
  // after commit; no lock is needed.
  std::memcpy(row->data(), data, row->table->schema().row_size());
  WriteSetEntry entry;
  entry.row = row;
  entry.new_data = data;
  entry.is_insert = true;
  entry.applied = true;
  txn->write_set().push_back(entry);
  return Status::OK();
}

Status TwoPhaseLocking::Delete(TxnContext* txn, Row* row) {
  if (NEXT700_UNLIKELY(txn->wounded())) {
    return Status::Aborted("wounded by older transaction");
  }

  if (WriteSetEntry* own = txn->FindWrite(row)) {
    if (own->is_delete) return Status::NotFound("already deleted");
    own->is_delete = true;
    return Status::OK();
  }
  NEXT700_RETURN_IF_ERROR(
      lock_manager_.Acquire(txn, row, LockMode::kExclusive));
  if (row->deleted()) return Status::NotFound("row deleted");
  WriteSetEntry entry;
  entry.row = row;
  entry.is_delete = true;
  const uint32_t size = row->table->schema().row_size();
  entry.new_data =
      static_cast<uint8_t*>(txn->arena()->AllocateCopy(row->data(), size));
  txn->write_set().push_back(entry);
  return Status::OK();
}

Status TwoPhaseLocking::Validate(TxnContext* txn) {
  // Conflicts were resolved eagerly by the locks; nothing to validate.
  txn->set_state(TxnState::kValidated);
  return Status::OK();
}

void TwoPhaseLocking::Finalize(TxnContext* txn) {
  for (auto& entry : txn->write_set()) {
    if (entry.is_delete) entry.row->set_deleted(true);
  }
  lock_manager_.ReleaseAll(txn);
  txn->set_state(TxnState::kCommitted);
}

void TwoPhaseLocking::Abort(TxnContext* txn) {
  const auto& writes = txn->write_set();
  // Roll back in reverse so repeated writes restore the oldest image last.
  for (auto it = writes.rbegin(); it != writes.rend(); ++it) {
    if (it->is_insert) {
      it->row->table->FreeRow(it->row);
    } else if (it->applied && it->undo_data != nullptr) {
      std::memcpy(it->row->data(), it->undo_data,
                  it->row->table->schema().row_size());
    }
  }
  lock_manager_.ReleaseAll(txn);
  txn->set_state(TxnState::kAborted);
}

}  // namespace next700
