#ifndef NEXT700_CC_OCC_SILO_H_
#define NEXT700_CC_OCC_SILO_H_

/// \file
/// Silo-style optimistic concurrency control (Tu et al., SOSP 2013).
/// Reads record the row's packed TID word; writes are buffered. Commit
/// locks the write set in pointer order, validates that every read TID is
/// unchanged and unlocked, then installs the writes under a fresh TID.
/// No timestamp is allocated at begin — the commit TID is derived from the
/// observed words, which is what makes Silo allocator-contention-free.

#include <atomic>

#include "cc/cc.h"

namespace next700 {

/// Packed TID word helpers (bit 63 = lock, bits 0..62 = TID).
namespace tidword {
inline constexpr uint64_t kLockBit = uint64_t{1} << 63;

inline bool IsLocked(uint64_t word) { return (word & kLockBit) != 0; }
inline uint64_t TidOf(uint64_t word) { return word & ~kLockBit; }

/// Spins until the row's word is unlocked and returns it.
uint64_t StableLoad(const Row* row);

/// Acquires the word lock (test-and-set on bit 63).
void Lock(Row* row);
bool TryLock(Row* row);

/// Releases the lock, leaving the TID unchanged.
void Unlock(Row* row);

/// Releases the lock and installs `tid` in one store.
void UnlockWithTid(Row* row, uint64_t tid);
}  // namespace tidword

class OccSilo : public ConcurrencyControl {
 public:
  OccSilo() = default;

  CcScheme scheme() const override { return CcScheme::kOcc; }

  Status Begin(TxnContext* txn) override;
  Status Read(TxnContext* txn, Row* row, uint8_t* out) override;
  Status Write(TxnContext* txn, Row* row, uint8_t* data) override;
  Status Insert(TxnContext* txn, Row* row, uint8_t* data) override;
  Status Delete(TxnContext* txn, Row* row) override;
  Status Validate(TxnContext* txn) override;
  void Finalize(TxnContext* txn) override;
  void Abort(TxnContext* txn) override;

 private:
  /// Releases word locks taken during a failed validation.
  static void UnlockWriteSet(TxnContext* txn);
};

}  // namespace next700

#endif  // NEXT700_CC_OCC_SILO_H_
