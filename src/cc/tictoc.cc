#include "cc/tictoc.h"

#include <algorithm>
#include <cstring>

#include "common/latch.h"
#include "storage/table.h"

namespace next700 {

Status TicToc::Begin(TxnContext* txn) {
  txn->set_state(TxnState::kActive);
  return Status::OK();
}

void TicToc::LockRow(Row* row) {
  latch_rank::OnAcquire(&row->tid_word, LatchRank::kRow);
  for (;;) {
    uint64_t word = row->tid_word.load(std::memory_order_relaxed);
    if (!ttword::IsLocked(word) &&
        row->tid_word.compare_exchange_weak(word, word | ttword::kLockBit,
                                            std::memory_order_acquire)) {
      NEXT700_TSAN_ACQUIRE(&row->tid_word);
      return;
    }
    CpuRelax();
  }
}

void TicToc::UnlockWriteSet(TxnContext* txn) {
  for (auto& entry : txn->write_set()) {
    if (entry.latched) {
      const uint64_t word =
          entry.row->tid_word.load(std::memory_order_relaxed);
      latch_rank::OnRelease(&entry.row->tid_word);
      NEXT700_TSAN_RELEASE(&entry.row->tid_word);
      entry.row->tid_word.store(word & ~ttword::kLockBit,
                                std::memory_order_release);
      entry.latched = false;
    }
  }
}

Status TicToc::Read(TxnContext* txn, Row* row, uint8_t* out) {
  if (WriteSetEntry* own = txn->FindWrite(row)) {
    if (own->is_delete) return Status::NotFound("deleted by this txn");
    std::memcpy(out, own->new_data, row->table->schema().row_size());
    return Status::OK();
  }
  const uint32_t size = row->table->schema().row_size();
  uint64_t observed;
  for (;;) {
    observed = row->tid_word.load(std::memory_order_acquire);
    if (ttword::IsLocked(observed)) {
      CpuRelax();
      continue;
    }
    // Same sanctioned race as OccSilo::Read: the copy is validated by
    // re-reading the word, which TSan cannot see through the plain fence.
    NEXT700_TSAN_IGNORE_READS_BEGIN();
    std::memcpy(out, row->data(), size);
    NEXT700_TSAN_IGNORE_READS_END();
    NEXT700_ATOMIC_THREAD_FENCE(std::memory_order_acquire);
    if (row->tid_word.load(std::memory_order_acquire) == observed) {
      NEXT700_TSAN_ACQUIRE(&row->tid_word);
      break;
    }
    CpuRelax();
  }
  ReadSetEntry entry;
  entry.row = row;
  entry.observed_tid = observed;
  entry.wts = ttword::WtsOf(observed);
  entry.rts = ttword::RtsOf(observed);
  txn->read_set().push_back(entry);
  if (row->deleted()) return Status::NotFound("row deleted");
  return Status::OK();
}

Status TicToc::Write(TxnContext* txn, Row* row, uint8_t* data) {
  if (WriteSetEntry* own = txn->FindWrite(row)) {
    if (own->is_delete) return Status::NotFound("deleted by this txn");
    own->new_data = data;
    return Status::OK();
  }
  WriteSetEntry entry;
  entry.row = row;
  entry.new_data = data;
  txn->write_set().push_back(entry);
  return Status::OK();
}

Status TicToc::Insert(TxnContext* txn, Row* row, uint8_t* data) {
  std::memcpy(row->data(), data, row->table->schema().row_size());
  WriteSetEntry entry;
  entry.row = row;
  entry.new_data = data;
  entry.is_insert = true;
  txn->write_set().push_back(entry);
  return Status::OK();
}

Status TicToc::Delete(TxnContext* txn, Row* row) {
  if (WriteSetEntry* own = txn->FindWrite(row)) {
    if (own->is_delete) return Status::NotFound("already deleted");
    own->is_delete = true;
    return Status::OK();
  }
  WriteSetEntry entry;
  entry.row = row;
  entry.is_delete = true;
  txn->write_set().push_back(entry);
  return Status::OK();
}

Status TicToc::Validate(TxnContext* txn) {
  auto& writes = txn->write_set();
  std::sort(writes.begin(), writes.end(),
            [](const WriteSetEntry& a, const WriteSetEntry& b) {
              return a.row < b.row;
            });
  // Lock the write set; commit_ts must exceed the rts of every written row.
  uint64_t commit_ts = 0;
  for (auto& entry : writes) {
    if (entry.is_insert) continue;
    LockRow(entry.row);
    entry.latched = true;
    if (entry.row->deleted()) {
      UnlockWriteSet(txn);
      if (txn->stats() != nullptr) ++txn->stats()->validation_fails;
      return Status::Aborted("write target deleted");
    }
    const uint64_t word = entry.row->tid_word.load(std::memory_order_relaxed);
    commit_ts = std::max(commit_ts, ttword::RtsOf(word) + 1);
  }
  // commit_ts must be at least the wts of every read version.
  for (const auto& entry : txn->read_set()) {
    commit_ts = std::max(commit_ts, entry.wts);
  }

  // Validate reads whose recorded validity window ends before commit_ts by
  // extending the row's rts.
  for (const auto& entry : txn->read_set()) {
    if (entry.rts >= commit_ts) continue;
    Row* row = entry.row;
    const bool own_write = txn->FindWrite(row) != nullptr;
    for (;;) {
      uint64_t word = row->tid_word.load(std::memory_order_acquire);
      if (ttword::WtsOf(word) != entry.wts) {
        UnlockWriteSet(txn);
        if (txn->stats() != nullptr) ++txn->stats()->validation_fails;
        return Status::Aborted("read version overwritten");
      }
      if (ttword::RtsOf(word) >= commit_ts && !ttword::IsLocked(word)) break;
      if (ttword::IsLocked(word)) {
        if (own_write) break;  // Locked by us; rts handled at install.
        UnlockWriteSet(txn);
        if (txn->stats() != nullptr) ++txn->stats()->validation_fails;
        return Status::Aborted("read row locked by writer");
      }
      // Extend rts to commit_ts. If the 15-bit delta would overflow, shift
      // wts forward as the TicToc paper does (shrinks the interval from
      // below; concurrent validators of the old wts abort spuriously but
      // safely).
      uint64_t new_wts = entry.wts;
      uint64_t delta = commit_ts - new_wts;
      if (delta > ttword::kMaxDelta) {
        new_wts = commit_ts - ttword::kMaxDelta;
        delta = ttword::kMaxDelta;
      }
      const uint64_t desired =
          ttword::Make(new_wts, new_wts + delta, /*locked=*/false);
      if (row->tid_word.compare_exchange_weak(word, desired,
                                              std::memory_order_acq_rel)) {
        break;
      }
      CpuRelax();
    }
  }
  txn->set_commit_ts(commit_ts);
  txn->set_state(TxnState::kValidated);
  return Status::OK();
}

void TicToc::Finalize(TxnContext* txn) {
  const uint64_t commit_ts = txn->commit_ts();
  for (auto& entry : txn->write_set()) {
    Row* row = entry.row;
    if (entry.is_insert) {
      row->tid_word.store(ttword::Make(commit_ts, commit_ts, false),
                          std::memory_order_release);
      continue;
    }
    if (entry.is_delete) {
      row->set_deleted(true);
    } else {
      std::memcpy(row->data(), entry.new_data,
                  row->table->schema().row_size());
    }
    latch_rank::OnRelease(&row->tid_word);
    NEXT700_TSAN_RELEASE(&row->tid_word);
    row->tid_word.store(ttword::Make(commit_ts, commit_ts, false),
                        std::memory_order_release);
    entry.latched = false;
  }
  txn->set_state(TxnState::kCommitted);
}

void TicToc::Abort(TxnContext* txn) {
  UnlockWriteSet(txn);
  for (auto& entry : txn->write_set()) {
    if (entry.is_insert) entry.row->table->FreeRow(entry.row);
  }
  txn->set_state(TxnState::kAborted);
}

}  // namespace next700
