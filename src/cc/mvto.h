#ifndef NEXT700_CC_MVTO_H_
#define NEXT700_CC_MVTO_H_

/// \file
/// Multi-version timestamp ordering. Each row carries a newest-first
/// version chain; writers install uncommitted head versions at execution
/// time and flip them committed after the log hardens, readers pick the
/// newest version at or below their begin timestamp and advance its rts.
/// Old versions are garbage-collected incrementally at write time against a
/// watermark of the oldest active transaction (disable with gc_enabled =
/// false to reproduce the chain-growth experiment, F10).

#include <atomic>
#include <memory>

#include "cc/cc.h"
#include "common/macros.h"
#include "common/timestamp.h"

namespace next700 {

/// Tracks the begin timestamp of each worker's in-flight transaction so the
/// garbage collector can compute a safe watermark.
class ActiveTxnTracker {
 public:
  static constexpr Timestamp kIdle = ~Timestamp{0};

  explicit ActiveTxnTracker(int max_threads)
      // lint: allow-naked-new — construction-time per-thread slot array.
      : slots_(new Slot[max_threads]), max_threads_(max_threads) {}

  void SetActive(int thread_id, Timestamp ts) {
    slots_[thread_id].ts.store(ts, std::memory_order_seq_cst);
  }
  void ClearActive(int thread_id) {
    slots_[thread_id].ts.store(kIdle, std::memory_order_release);
  }

  /// Smallest active begin timestamp, clamped to `floor` (the timestamp
  /// allocator's GcFloor, which covers unregistered and future
  /// transactions). Versions older than the newest version at-or-below the
  /// watermark are dead. The caller must evaluate `floor` *before* this
  /// call — that read order, together with the seq_cst stores in SetActive
  /// and the allocator's floor protocol, guarantees every transaction is
  /// covered by one side or the other at all times.
  Timestamp Watermark(Timestamp floor) const {
    Timestamp min_ts = floor;
    for (int i = 0; i < max_threads_; ++i) {
      // seq_cst pairs with the allocator's floor-raise: if we see a slot
      // floor already raised, this load is guaranteed to see the
      // pre-registration that preceded the raise.
      const Timestamp ts = slots_[i].ts.load(std::memory_order_seq_cst);
      if (ts < min_ts) min_ts = ts;
    }
    return min_ts;
  }

 private:
  struct NEXT700_CACHE_ALIGNED Slot {
    std::atomic<Timestamp> ts{kIdle};
  };
  std::unique_ptr<Slot[]> slots_;
  int max_threads_;
};

class Mvto : public ConcurrencyControl {
 public:
  Mvto(TimestampAllocator* ts_allocator, ActiveTxnTracker* tracker,
       bool gc_enabled);

  CcScheme scheme() const override { return CcScheme::kMvto; }
  bool is_multiversion() const override { return true; }

  Status Begin(TxnContext* txn) override;
  Status Read(TxnContext* txn, Row* row, uint8_t* out) override;
  Status Write(TxnContext* txn, Row* row, uint8_t* data) override;
  Status Insert(TxnContext* txn, Row* row, uint8_t* data) override;
  Status Delete(TxnContext* txn, Row* row) override;
  Status Validate(TxnContext* txn) override;
  void Finalize(TxnContext* txn) override;
  void Abort(TxnContext* txn) override;

  /// Chain length of `row` (tests and the GC experiment).
  static size_t ChainLength(Row* row);

 private:
  Status InstallVersion(TxnContext* txn, Row* row, uint8_t* data,
                        bool is_delete);

  /// Retires versions unreachable below the watermark. Caller holds the row
  /// mini-latch.
  void CollectGarbage(TxnContext* txn, Row* row);

  TimestampAllocator* ts_allocator_;
  ActiveTxnTracker* tracker_;
  bool gc_enabled_;
};

}  // namespace next700

#endif  // NEXT700_CC_MVTO_H_
