#include "cc/snapshot_isolation.h"

#include <algorithm>
#include <cstring>

#include "storage/table.h"
#include "storage/version_pool.h"

namespace next700 {

namespace {

Version* NewVersion(TxnContext* txn, uint32_t payload_size) {
  VersionPool* pool = txn->version_pool();
  return pool != nullptr ? pool->Allocate(payload_size)
                         : Version::Allocate(payload_size);
}

void RetireVersion(TxnContext* txn, Version* v) {
  VersionPool* pool = txn->version_pool();
  if (pool != nullptr) {
    pool->Retire(v);
  } else {
    Version::Free(v);
  }
}

}  // namespace

SnapshotIsolation::SnapshotIsolation(TimestampAllocator* ts_allocator,
                                     ActiveTxnTracker* tracker,
                                     bool gc_enabled)
    : ts_allocator_(ts_allocator),
      tracker_(tracker),
      gc_enabled_(gc_enabled) {}

Status SnapshotIsolation::Begin(TxnContext* txn) {
  // Same pre-registration as MVTO: never let the GC watermark pass a
  // snapshot timestamp that is allocated but not yet tracked.
  tracker_->SetActive(txn->thread_id(),
                      ts_allocator_->ActiveLowerBound(txn->thread_id()));
  txn->set_ts(ts_allocator_->Allocate(txn->thread_id()));  // Snapshot ts.
  tracker_->SetActive(txn->thread_id(), txn->ts());
  txn->set_state(TxnState::kActive);
  return Status::OK();
}

Status SnapshotIsolation::Read(TxnContext* txn, Row* row, uint8_t* out) {
  if (WriteSetEntry* own = txn->FindWrite(row)) {
    if (own->is_delete) return Status::NotFound("deleted by this txn");
    std::memcpy(out, own->new_data, row->table->schema().row_size());
    return Status::OK();
  }
  RowLatchGuard guard(row);
  // SI chains only ever hold committed versions (writes install at commit),
  // so the visible version is simply the newest with wts <= snapshot.
  for (Version* v = row->chain.load(std::memory_order_relaxed); v != nullptr;
       v = v->next) {
    if (v->wts > txn->ts()) continue;
    if (v->is_delete) return Status::NotFound("row deleted at snapshot");
    std::memcpy(out, v->data(), row->table->schema().row_size());
    // No rts update: SI readers are invisible to writers — the source of
    // both its speed and its write-skew anomaly.
    txn->read_set().push_back(ReadSetEntry{row, 0, v->wts, 0, v});
    return Status::OK();
  }
  return Status::NotFound("no visible version");
}

Status SnapshotIsolation::Write(TxnContext* txn, Row* row, uint8_t* data) {
  if (WriteSetEntry* own = txn->FindWrite(row)) {
    if (own->is_delete) return Status::NotFound("deleted by this txn");
    own->new_data = data;
    return Status::OK();
  }
  // Eager first-committer-wins check to fail fast; re-validated at commit.
  {
    RowLatchGuard guard(row);
    Version* newest = row->chain.load(std::memory_order_relaxed);
    if (newest != nullptr && newest->wts > txn->ts()) {
      return Status::Aborted("SI write-write conflict (eager)");
    }
  }
  WriteSetEntry entry;
  entry.row = row;
  entry.new_data = data;
  txn->write_set().push_back(entry);
  return Status::OK();
}

Status SnapshotIsolation::Insert(TxnContext* txn, Row* row, uint8_t* data) {
  WriteSetEntry entry;
  entry.row = row;
  entry.new_data = data;
  entry.is_insert = true;
  txn->write_set().push_back(entry);
  return Status::OK();
}

Status SnapshotIsolation::Delete(TxnContext* txn, Row* row) {
  if (WriteSetEntry* own = txn->FindWrite(row)) {
    if (own->is_delete) return Status::NotFound("already deleted");
    own->is_delete = true;
    return Status::OK();
  }
  WriteSetEntry entry;
  entry.row = row;
  entry.is_delete = true;
  txn->write_set().push_back(entry);
  return Status::OK();
}

// Thread safety analysis: Validate() latches the (sorted) write set row by
// row and intentionally leaves those latches held until Finalize()/Abort()
// — a transaction-scoped lock set tracked by WriteSetEntry::latched that
// TSA's function-local analysis cannot express, so the three functions
// carrying it opt out below. TSan and the latch-rank checker cover this
// protocol dynamically.

void SnapshotIsolation::UnlatchWriteSet(TxnContext* txn)
    NO_THREAD_SAFETY_ANALYSIS {
  for (auto& entry : txn->write_set()) {
    if (entry.latched) {
      entry.row->Unlatch();
      entry.latched = false;
    }
  }
}

Status SnapshotIsolation::Validate(TxnContext* txn)
    NO_THREAD_SAFETY_ANALYSIS {
  auto& writes = txn->write_set();
  std::sort(writes.begin(), writes.end(),
            [](const WriteSetEntry& a, const WriteSetEntry& b) {
              return a.row < b.row;
            });
  // Latch the write set, then enforce first-committer-wins: any version
  // committed after our snapshot kills us.
  for (auto& entry : writes) {
    if (entry.is_insert) continue;
    entry.row->Latch();
    entry.latched = true;
    Version* newest = entry.row->chain.load(std::memory_order_relaxed);
    if (newest != nullptr && newest->wts > txn->ts()) {
      UnlatchWriteSet(txn);
      if (txn->stats() != nullptr) ++txn->stats()->validation_fails;
      return Status::Aborted("SI write-write conflict");
    }
  }
  txn->set_commit_ts(ts_allocator_->Allocate(txn->thread_id()));
  txn->set_state(TxnState::kValidated);
  return Status::OK();
}

void SnapshotIsolation::CollectGarbage(TxnContext* txn, Row* row) {
  const Timestamp watermark = tracker_->Watermark(ts_allocator_->GcFloor());
  Version* keep = row->chain.load(std::memory_order_relaxed);
  while (keep != nullptr) {
    if (keep->wts <= watermark) break;  // SI versions are always committed.
    keep = keep->next;
  }
  if (keep == nullptr) return;
  Version* dead = keep->next;
  keep->next = nullptr;
  while (dead != nullptr) {
    Version* next = dead->next;
    RetireVersion(txn, dead);
    dead = next;
  }
}

void SnapshotIsolation::Finalize(TxnContext* txn)
    NO_THREAD_SAFETY_ANALYSIS {
  const Timestamp commit_ts = txn->commit_ts();
  for (auto& entry : txn->write_set()) {
    Row* row = entry.row;
    const uint32_t row_size = row->table->schema().row_size();
    Version* v = NewVersion(txn, row_size);
    v->wts = commit_ts;
    v->rts.store(commit_ts, std::memory_order_relaxed);
    v->committed.store(true, std::memory_order_relaxed);
    v->is_delete = entry.is_delete;
    if (entry.is_delete) {
      // Tombstones keep the prior image for debuggability.
      Version* prior = row->chain.load(std::memory_order_relaxed);
      std::memcpy(v->data(), prior != nullptr ? prior->data() : v->data(),
                  prior != nullptr ? row_size : 0);
    } else {
      std::memcpy(v->data(), entry.new_data, row_size);
    }
    if (entry.is_insert) {
      v->next = nullptr;
      row->chain.store(v, std::memory_order_release);
      continue;
    }
    // entry.latched: installs happen under the latch taken in Validate.
    v->next = row->chain.load(std::memory_order_relaxed);
    row->chain.store(v, std::memory_order_release);
    if (gc_enabled_) CollectGarbage(txn, row);
    row->Unlatch();
    entry.latched = false;
  }
  tracker_->ClearActive(txn->thread_id());
  txn->set_state(TxnState::kCommitted);
}

void SnapshotIsolation::Abort(TxnContext* txn) {
  UnlatchWriteSet(txn);
  for (auto& entry : txn->write_set()) {
    if (entry.is_insert) entry.row->table->FreeRow(entry.row);
  }
  tracker_->ClearActive(txn->thread_id());
  txn->set_state(TxnState::kAborted);
}

}  // namespace next700
