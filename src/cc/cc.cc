#include "cc/cc.h"

#include <algorithm>

namespace next700 {

const char* CcSchemeName(CcScheme scheme) {
  switch (scheme) {
    case CcScheme::kNoWait:
      return "NO_WAIT";
    case CcScheme::kWaitDie:
      return "WAIT_DIE";
    case CcScheme::kWoundWait:
      return "WOUND_WAIT";
    case CcScheme::kDlDetect:
      return "DL_DETECT";
    case CcScheme::kTimestamp:
      return "TIMESTAMP";
    case CcScheme::kOcc:
      return "SILO";
    case CcScheme::kTicToc:
      return "TICTOC";
    case CcScheme::kMvto:
      return "MVTO";
    case CcScheme::kSi:
      return "SI";
    case CcScheme::kHstore:
      return "HSTORE";
  }
  return "UNKNOWN";
}

const std::vector<CcScheme>& AllCcSchemes() {
  // lint: allow-naked-new — leaked once-only static registry.
  static const std::vector<CcScheme>* kAll = new std::vector<CcScheme>{
      CcScheme::kNoWait, CcScheme::kWaitDie, CcScheme::kWoundWait,
      CcScheme::kDlDetect, CcScheme::kTimestamp, CcScheme::kOcc,
      CcScheme::kTicToc, CcScheme::kMvto, CcScheme::kSi, CcScheme::kHstore,
  };
  return *kAll;
}

CcScheme CcSchemeFromName(const std::string& name) {
  std::string upper = name;
  std::transform(upper.begin(), upper.end(), upper.begin(),
                 [](unsigned char c) { return std::toupper(c); });
  if (upper == "OCC") upper = "SILO";
  for (CcScheme scheme : AllCcSchemes()) {
    if (upper == CcSchemeName(scheme)) return scheme;
  }
  NEXT700_CHECK_MSG(false, ("unknown CC scheme: " + name).c_str());
  return CcScheme::kNoWait;
}

}  // namespace next700
