#include "cc/occ_silo.h"

#include <algorithm>
#include <cstring>

#include "common/latch.h"
#include "storage/table.h"

namespace next700 {

namespace tidword {

uint64_t StableLoad(const Row* row) {
  for (;;) {
    const uint64_t word = row->tid_word.load(std::memory_order_acquire);
    if (!IsLocked(word)) return word;
    CpuRelax();
  }
}

void Lock(Row* row) {
  latch_rank::OnAcquire(&row->tid_word, LatchRank::kRow);
  for (;;) {
    uint64_t word = row->tid_word.load(std::memory_order_relaxed);
    if (!IsLocked(word) &&
        row->tid_word.compare_exchange_weak(word, word | kLockBit,
                                            std::memory_order_acquire)) {
      NEXT700_TSAN_ACQUIRE(&row->tid_word);
      return;
    }
    CpuRelax();
  }
}

bool TryLock(Row* row) {
  uint64_t word = row->tid_word.load(std::memory_order_relaxed);
  if (IsLocked(word)) return false;
  if (row->tid_word.compare_exchange_strong(word, word | kLockBit,
                                            std::memory_order_acquire)) {
    latch_rank::OnAcquire(&row->tid_word, LatchRank::kRow);
    NEXT700_TSAN_ACQUIRE(&row->tid_word);
    return true;
  }
  return false;
}

void Unlock(Row* row) {
  const uint64_t word = row->tid_word.load(std::memory_order_relaxed);
  NEXT700_DCHECK(IsLocked(word));
  latch_rank::OnRelease(&row->tid_word);
  NEXT700_TSAN_RELEASE(&row->tid_word);
  row->tid_word.store(word & ~kLockBit, std::memory_order_release);
}

void UnlockWithTid(Row* row, uint64_t tid) {
  NEXT700_DCHECK(!IsLocked(tid));
  // Finalize also routes never-locked freshly inserted rows through here;
  // only drop a rank-checker entry when the word lock is actually held.
  if (IsLocked(row->tid_word.load(std::memory_order_relaxed))) {
    latch_rank::OnRelease(&row->tid_word);
  }
  NEXT700_TSAN_RELEASE(&row->tid_word);
  row->tid_word.store(tid, std::memory_order_release);
}

}  // namespace tidword

Status OccSilo::Begin(TxnContext* txn) {
  txn->set_state(TxnState::kActive);
  return Status::OK();
}

Status OccSilo::Read(TxnContext* txn, Row* row, uint8_t* out) {
  if (WriteSetEntry* own = txn->FindWrite(row)) {
    if (own->is_delete) return Status::NotFound("deleted by this txn");
    std::memcpy(out, own->new_data, row->table->schema().row_size());
    return Status::OK();
  }
  const uint32_t size = row->table->schema().row_size();
  uint64_t observed;
  for (;;) {
    observed = tidword::StableLoad(row);
    // Deliberately racy copy: a concurrent committer may be overwriting the
    // payload. The tidword re-check below discards torn copies, so the race
    // is benign by protocol — tell TSan not to report the reads (it cannot
    // model the standalone fence) while keeping every other access checked.
    NEXT700_TSAN_IGNORE_READS_BEGIN();
    std::memcpy(out, row->data(), size);
    NEXT700_TSAN_IGNORE_READS_END();
    NEXT700_ATOMIC_THREAD_FENCE(std::memory_order_acquire);
    if (row->tid_word.load(std::memory_order_acquire) == observed) {
      // The acquire load pairs with UnlockWithTid's release store: the copy
      // we kept happened-after the write that published `observed`.
      NEXT700_TSAN_ACQUIRE(&row->tid_word);
      break;
    }
    CpuRelax();
  }
  // Even a deleted row is recorded: the anti-dependency must be validated.
  txn->read_set().push_back(ReadSetEntry{row, observed, 0, 0, nullptr});
  if (row->deleted()) return Status::NotFound("row deleted");
  return Status::OK();
}

Status OccSilo::Write(TxnContext* txn, Row* row, uint8_t* data) {
  if (WriteSetEntry* own = txn->FindWrite(row)) {
    if (own->is_delete) return Status::NotFound("deleted by this txn");
    own->new_data = data;
    return Status::OK();
  }
  WriteSetEntry entry;
  entry.row = row;
  entry.new_data = data;
  txn->write_set().push_back(entry);
  return Status::OK();
}

Status OccSilo::Insert(TxnContext* txn, Row* row, uint8_t* data) {
  std::memcpy(row->data(), data, row->table->schema().row_size());
  WriteSetEntry entry;
  entry.row = row;
  entry.new_data = data;
  entry.is_insert = true;
  txn->write_set().push_back(entry);
  return Status::OK();
}

Status OccSilo::Delete(TxnContext* txn, Row* row) {
  if (WriteSetEntry* own = txn->FindWrite(row)) {
    if (own->is_delete) return Status::NotFound("already deleted");
    own->is_delete = true;
    return Status::OK();
  }
  WriteSetEntry entry;
  entry.row = row;
  entry.is_delete = true;
  txn->write_set().push_back(entry);
  return Status::OK();
}

void OccSilo::UnlockWriteSet(TxnContext* txn) {
  for (auto& entry : txn->write_set()) {
    if (entry.latched) {
      tidword::Unlock(entry.row);
      entry.latched = false;
    }
  }
}

Status OccSilo::Validate(TxnContext* txn) {
  auto& writes = txn->write_set();
  // Phase 1: lock the write set in a global order (row address).
  std::sort(writes.begin(), writes.end(),
            [](const WriteSetEntry& a, const WriteSetEntry& b) {
              return a.row < b.row;
            });
  for (auto& entry : writes) {
    if (entry.is_insert) continue;  // Private until published.
    tidword::Lock(entry.row);
    entry.latched = true;
    if (entry.row->deleted()) {
      UnlockWriteSet(txn);
      if (txn->stats() != nullptr) ++txn->stats()->validation_fails;
      return Status::Aborted("write target deleted");
    }
  }
  NEXT700_ATOMIC_THREAD_FENCE(std::memory_order_seq_cst);

  // Phase 2: validate the read set.
  uint64_t max_tid = 0;
  for (const auto& entry : txn->read_set()) {
    const uint64_t current =
        entry.row->tid_word.load(std::memory_order_acquire);
    const bool own_write = txn->FindWrite(entry.row) != nullptr;
    if (tidword::TidOf(current) != tidword::TidOf(entry.observed_tid) ||
        (tidword::IsLocked(current) && !own_write)) {
      UnlockWriteSet(txn);
      if (txn->stats() != nullptr) ++txn->stats()->validation_fails;
      return Status::Aborted("read validation failed");
    }
    max_tid = std::max(max_tid, tidword::TidOf(current));
  }
  for (const auto& entry : writes) {
    if (entry.is_insert) continue;
    max_tid = std::max(
        max_tid,
        tidword::TidOf(entry.row->tid_word.load(std::memory_order_relaxed)));
  }
  txn->set_commit_ts(max_tid + 1);
  txn->set_state(TxnState::kValidated);
  return Status::OK();
}

void OccSilo::Finalize(TxnContext* txn) {
  const uint64_t commit_tid = txn->commit_ts();
  for (auto& entry : txn->write_set()) {
    Row* row = entry.row;
    if (entry.is_insert) {
      tidword::UnlockWithTid(row, commit_tid);
      continue;
    }
    if (entry.is_delete) {
      row->set_deleted(true);
    } else {
      std::memcpy(row->data(), entry.new_data,
                  row->table->schema().row_size());
    }
    tidword::UnlockWithTid(row, commit_tid);
    entry.latched = false;
  }
  txn->set_state(TxnState::kCommitted);
}

void OccSilo::Abort(TxnContext* txn) {
  UnlockWriteSet(txn);
  for (auto& entry : txn->write_set()) {
    if (entry.is_insert) entry.row->table->FreeRow(entry.row);
  }
  txn->set_state(TxnState::kAborted);
}

}  // namespace next700
