#ifndef NEXT700_CC_TICTOC_H_
#define NEXT700_CC_TICTOC_H_

/// \file
/// TicToc: data-driven timestamp management (Yu et al., SIGMOD 2016).
/// Rows carry a packed (wts, rts) pair; transactions compute a commit
/// timestamp from the data they touched instead of from a centralized
/// allocator, and readers lazily extend a row's rts to keep read-only
/// accesses valid. Word layout: [lock:1][delta:15][wts:48] with
/// rts = wts + delta.

#include <atomic>

#include "cc/cc.h"

namespace next700 {

namespace ttword {
inline constexpr uint64_t kLockBit = uint64_t{1} << 63;
inline constexpr int kWtsBits = 48;
inline constexpr uint64_t kWtsMask = (uint64_t{1} << kWtsBits) - 1;
inline constexpr uint64_t kMaxDelta = (uint64_t{1} << 15) - 1;

inline bool IsLocked(uint64_t word) { return (word & kLockBit) != 0; }
inline uint64_t WtsOf(uint64_t word) { return word & kWtsMask; }
inline uint64_t DeltaOf(uint64_t word) {
  return (word >> kWtsBits) & kMaxDelta;
}
inline uint64_t RtsOf(uint64_t word) { return WtsOf(word) + DeltaOf(word); }

inline uint64_t Make(uint64_t wts, uint64_t rts, bool locked) {
  const uint64_t delta = rts - wts;
  return (locked ? kLockBit : 0) | (delta << kWtsBits) | (wts & kWtsMask);
}
}  // namespace ttword

class TicToc : public ConcurrencyControl {
 public:
  TicToc() = default;

  CcScheme scheme() const override { return CcScheme::kTicToc; }

  Status Begin(TxnContext* txn) override;
  Status Read(TxnContext* txn, Row* row, uint8_t* out) override;
  Status Write(TxnContext* txn, Row* row, uint8_t* data) override;
  Status Insert(TxnContext* txn, Row* row, uint8_t* data) override;
  Status Delete(TxnContext* txn, Row* row) override;
  Status Validate(TxnContext* txn) override;
  void Finalize(TxnContext* txn) override;
  void Abort(TxnContext* txn) override;

 private:
  static void LockRow(Row* row);
  static void UnlockWriteSet(TxnContext* txn);
};

}  // namespace next700

#endif  // NEXT700_CC_TICTOC_H_
