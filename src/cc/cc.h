#ifndef NEXT700_CC_CC_H_
#define NEXT700_CC_CC_H_

/// \file
/// The concurrency-control plugin interface — the centerpiece of the
/// composable design. An engine is assembled from one scheme implementing
/// this interface plus the shared storage/index/log substrates; the
/// registry at the bottom enumerates every scheme so benchmarks can sweep
/// the whole family.
///
/// Commit protocol (driven by Engine::Commit):
///   1. Validate(txn)  — scheme-specific conflict resolution; on OK the
///                       transaction is logically committed but its writes
///                       may not be visible yet (locks/latches may be held).
///   2. (Engine appends the commit log record and waits for durability.)
///   3. Finalize(txn)  — writes become visible, locks are released.
/// On any failure the engine calls Abort(txn), which must roll back
/// whatever the scheme has done so far and release all resources.

#include <memory>
#include <string>
#include <vector>

#include "common/status.h"
#include "common/timestamp.h"
#include "storage/row.h"
#include "txn/txn.h"

namespace next700 {

class Engine;

enum class CcScheme {
  kNoWait,     // 2PL, abort on conflict.
  kWaitDie,    // 2PL, older waits / younger dies.
  kWoundWait,  // 2PL, older wounds younger holders / younger waits.
  kDlDetect,   // 2PL, waits-for-graph deadlock detection.
  kTimestamp,  // Basic T/O with Thomas write rule, deferred writes.
  kOcc,        // Silo-style optimistic CC.
  kTicToc,     // Data-driven timestamp management.
  kMvto,       // Multi-version timestamp ordering.
  kSi,         // Snapshot isolation (weaker: admits write skew).
  kHstore,     // Partition-level locking, no per-row CC.
};

const char* CcSchemeName(CcScheme scheme);

/// All schemes, in the order the design-space benchmarks sweep them.
const std::vector<CcScheme>& AllCcSchemes();

/// Parses "NO_WAIT", "no_wait", "SILO", etc. Aborts on unknown names.
CcScheme CcSchemeFromName(const std::string& name);

class ConcurrencyControl {
 public:
  virtual ~ConcurrencyControl() = default;

  virtual CcScheme scheme() const = 0;

  /// True when the scheme reads/writes multi-version chains instead of the
  /// inline row payload (storage must initialize chains on insert).
  virtual bool is_multiversion() const { return false; }

  /// Starts a transaction. `txn` arrives Reset() with txn_id assigned and
  /// (for the H-Store scheme) partitions() populated.
  virtual Status Begin(TxnContext* txn) = 0;

  /// Reads the row payload into `out` (Schema::row_size() bytes). Returns
  /// kAborted on a concurrency conflict and kNotFound for rows deleted
  /// under this transaction's visibility.
  virtual Status Read(TxnContext* txn, Row* row, uint8_t* out) = 0;

  /// Read with declared write intent (SELECT ... FOR UPDATE). Lock-based
  /// schemes take the exclusive lock up front, avoiding the upgrade
  /// deadlocks that read-modify-write otherwise causes; other schemes
  /// default to a plain read.
  virtual Status ReadForUpdate(TxnContext* txn, Row* row, uint8_t* out) {
    return Read(txn, row, out);
  }

  /// Stages a full-row after-image. `data` must hold row_size bytes; it is
  /// copied into the transaction arena by the engine before this call.
  virtual Status Write(TxnContext* txn, Row* row, uint8_t* data) = 0;

  /// Registers a freshly allocated, unpublished row whose payload is in
  /// `data` (already arena-resident).
  virtual Status Insert(TxnContext* txn, Row* row, uint8_t* data) = 0;

  /// Stages a deletion of `row`.
  virtual Status Delete(TxnContext* txn, Row* row) = 0;

  /// Pre-commit validation/installation step (see file comment).
  virtual Status Validate(TxnContext* txn) = 0;

  /// Post-durability visibility + resource release. Must not fail.
  virtual void Finalize(TxnContext* txn) = 0;

  /// Rolls back and releases everything. Valid in any active state.
  virtual void Abort(TxnContext* txn) = 0;
};

}  // namespace next700

#endif  // NEXT700_CC_CC_H_
