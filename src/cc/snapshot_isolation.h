#ifndef NEXT700_CC_SNAPSHOT_ISOLATION_H_
#define NEXT700_CC_SNAPSHOT_ISOLATION_H_

/// \file
/// Snapshot isolation (SI), the Hekaton/Oracle-style weaker sibling of
/// MVTO. Transactions read the committed snapshot as of their begin
/// timestamp and never touch read timestamps; writes are buffered and
/// validated at commit with first-committer-wins (any committed version
/// newer than the snapshot aborts the writer), then installed under a
/// fresh commit timestamp.
///
/// SI is deliberately NOT serializable: it admits write skew, which the
/// test suite demonstrates (tests/si_anomaly_test.cc) — exactly the kind of
/// isolation/performance trade-off the keynote's design space exposes as a
/// pluggable choice.

#include "cc/cc.h"
#include "cc/mvto.h"
#include "common/timestamp.h"

namespace next700 {

class SnapshotIsolation : public ConcurrencyControl {
 public:
  SnapshotIsolation(TimestampAllocator* ts_allocator,
                    ActiveTxnTracker* tracker, bool gc_enabled);

  CcScheme scheme() const override { return CcScheme::kSi; }
  bool is_multiversion() const override { return true; }

  Status Begin(TxnContext* txn) override;
  Status Read(TxnContext* txn, Row* row, uint8_t* out) override;
  Status Write(TxnContext* txn, Row* row, uint8_t* data) override;
  Status Insert(TxnContext* txn, Row* row, uint8_t* data) override;
  Status Delete(TxnContext* txn, Row* row) override;
  Status Validate(TxnContext* txn) override;
  void Finalize(TxnContext* txn) override;
  void Abort(TxnContext* txn) override;

 private:
  void UnlatchWriteSet(TxnContext* txn);
  void CollectGarbage(TxnContext* txn, Row* row);

  TimestampAllocator* ts_allocator_;
  ActiveTxnTracker* tracker_;
  bool gc_enabled_;
};

}  // namespace next700

#endif  // NEXT700_CC_SNAPSHOT_ISOLATION_H_
