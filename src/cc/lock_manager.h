#ifndef NEXT700_CC_LOCK_MANAGER_H_
#define NEXT700_CC_LOCK_MANAGER_H_

/// \file
/// Row lock manager backing the 2PL family (NO_WAIT / WAIT_DIE /
/// DL_DETECT). Lock state lives in a sharded hash map keyed by row pointer;
/// waiters block by spinning on a stack-resident request block, which keeps
/// the wake-up path allocation-free.
///
/// Deadlock handling is the pluggable part:
///   * kNoWait  — any conflict aborts the requester immediately.
///   * kWaitDie — the requester may wait only if it is older (smaller
///                begin timestamp) than every conflicting owner; younger
///                requesters die. Waits-on-older never happens, so the
///                wait graph is acyclic by construction.
///   * kWoundWait — older requesters *wound* (asynchronously kill) younger
///                conflicting holders and wait for them to clean up;
///                younger requesters wait. Waits go younger-on-older only,
///                so the graph is again acyclic, and — unlike wait-die —
///                old transactions never abort.
///   * kDlDetect — requesters wait and publish waits-for edges into a
///                global graph; a DFS from the requester detects cycles and
///                aborts the requester that closed the cycle.

#include <atomic>
#include <cstdint>
#include <memory>
#include <unordered_map>
#include <unordered_set>
#include <vector>

#include "common/latch.h"
#include "common/status.h"
#include "common/thread_safety.h"
#include "storage/row.h"
#include "txn/txn.h"

namespace next700 {

enum class LockMode { kShared, kExclusive };

enum class DeadlockPolicy { kNoWait, kWaitDie, kWoundWait, kDlDetect };

class LockManager {
 public:
  explicit LockManager(DeadlockPolicy policy);
  ~LockManager() = default;
  LockManager(const LockManager&) = delete;
  LockManager& operator=(const LockManager&) = delete;

  /// Acquires (or upgrades to) `mode` on `row` for `txn`, blocking per the
  /// deadlock policy. Returns kAborted when the policy kills the request.
  /// Records the row in txn->held_locks() on first acquisition.
  Status Acquire(TxnContext* txn, Row* row, LockMode mode);

  /// Releases every lock held by `txn` and wakes eligible waiters.
  void ReleaseAll(TxnContext* txn);

  DeadlockPolicy policy() const { return policy_; }

 private:
  static constexpr int kNumShards = 1024;

  struct Owner {
    uint64_t txn_id;
    Timestamp ts;
    LockMode mode;
    TxnContext* txn;  // For wounding; valid while the entry exists.
  };

  /// Stack-resident wait block. state transitions: kWaiting -> kGranted
  /// (by a releaser) — or the waiter dequeues itself on deadlock/timeout.
  struct Waiter {
    enum State : int { kWaiting = 0, kGranted = 1 };
    uint64_t txn_id;
    Timestamp ts;
    LockMode mode;
    bool is_upgrade;
    TxnContext* txn;  // For wounding waiters ahead in the queue.
    std::atomic<int> state{kWaiting};
    Waiter* next = nullptr;
  };

  struct CAPABILITY("lockstate") LockState {
    std::atomic<uint8_t> latch{0};
    std::vector<Owner> owners GUARDED_BY(this);
    Waiter* wait_head GUARDED_BY(this) = nullptr;
    Waiter* wait_tail GUARDED_BY(this) = nullptr;

    void Lock() ACQUIRE() {
      latch_rank::OnAcquire(this, LatchRank::kLockState);
      while (latch.exchange(1, std::memory_order_acquire) != 0) CpuRelax();
      NEXT700_TSAN_ACQUIRE(this);
    }
    void Unlock() RELEASE() {
      latch_rank::OnRelease(this);
      NEXT700_TSAN_RELEASE(this);
      latch.store(0, std::memory_order_release);
    }

    Owner* FindOwner(uint64_t txn_id) REQUIRES(this);
    bool HasConflict(uint64_t txn_id, LockMode mode) const REQUIRES(this);
    void Enqueue(Waiter* waiter) REQUIRES(this);
    void Dequeue(Waiter* waiter) REQUIRES(this);
    /// Grants queued waiters that have become compatible (FIFO, with
    /// upgrades at the head).
    void GrantWaiters() REQUIRES(this);
  };

  struct Shard {
    SpinLatch latch{LatchRank::kLockShard};
    std::unordered_map<Row*, std::unique_ptr<LockState>> states
        GUARDED_BY(latch);
  };

  /// Global waits-for graph for kDlDetect.
  class WaitsForGraph {
   public:
    /// Replaces `waiter`'s out-edges and reports whether a cycle through
    /// `waiter` now exists.
    bool UpdateAndCheckCycle(uint64_t waiter,
                             const std::vector<uint64_t>& holders);
    void Remove(uint64_t waiter);

   private:
    bool HasPathTo(uint64_t from, uint64_t target,
                   std::unordered_set<uint64_t>* visited) const
        REQUIRES(latch_);

    SpinLatch latch_{LatchRank::kWaitsForGraph};
    std::unordered_map<uint64_t, std::vector<uint64_t>> edges_
        GUARDED_BY(latch_);
  };

  LockState* GetState(Row* row);

  /// Collects txn-ids this request would wait on (owners + queued waiters
  /// ahead). Caller holds the state latch.
  static void CollectBlockers(const LockState& state, const Waiter& self,
                              uint64_t txn_id, std::vector<uint64_t>* out)
      REQUIRES(state);

  Status Wait(TxnContext* txn, LockState* state, Waiter* waiter, Row* row);

  /// Re-runs waiter granting after a queue element was removed.
  static void GrantAfterDequeue(LockState* state) REQUIRES(state);

  /// Wound-wait: marks younger conflicting holders/waiters for death.
  /// Caller holds the state latch.
  static void WoundYoungerConflicts(LockState* state, TxnContext* txn,
                                    LockMode mode) REQUIRES(state);

  DeadlockPolicy policy_;
  std::unique_ptr<Shard[]> shards_;
  WaitsForGraph graph_;
};

}  // namespace next700

#endif  // NEXT700_CC_LOCK_MANAGER_H_
