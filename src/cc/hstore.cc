#include "cc/hstore.h"

#include <algorithm>
#include <cstring>

#include "storage/table.h"

namespace next700 {

Hstore::Hstore(uint32_t num_partitions)
    : num_partitions_(num_partitions),
      // lint: allow-naked-new — construction-time partition latch array.
      partition_locks_(new SpinLatch[num_partitions]) {
  NEXT700_CHECK(num_partitions > 0);
}

Status Hstore::Begin(TxnContext* txn) {
  auto& parts = txn->partitions();
  if (parts.empty()) {
    // Undeclared access pattern: fall back to locking every partition.
    parts.reserve(num_partitions_);
    for (uint32_t p = 0; p < num_partitions_; ++p) parts.push_back(p);
  } else {
    std::sort(parts.begin(), parts.end());
    parts.erase(std::unique(parts.begin(), parts.end()), parts.end());
    NEXT700_CHECK_MSG(parts.back() < num_partitions_,
                      "partition id out of range");
  }
  LockPartitions(parts);
  txn->set_state(TxnState::kActive);
  return Status::OK();
}

void Hstore::LockPartitions(const TxnContext::PartitionSet& parts) {
  for (uint32_t p : parts) partition_locks_[p].Lock();
}

void Hstore::CheckAccess(const TxnContext* txn, const Row* row) const {
#ifndef NDEBUG
  if (row->table->read_only()) return;  // Replicated reference data.
  const auto& parts = const_cast<TxnContext*>(txn)->partitions();
  NEXT700_DCHECK(std::binary_search(parts.begin(), parts.end(),
                                    row->partition));
#else
  (void)txn;
  (void)row;
#endif
}

Status Hstore::Read(TxnContext* txn, Row* row, uint8_t* out) {
  CheckAccess(txn, row);
  if (WriteSetEntry* own = txn->FindWrite(row)) {
    if (own->is_delete) return Status::NotFound("deleted by this txn");
  }
  if (row->deleted()) return Status::NotFound("row deleted");
  std::memcpy(out, row->data(), row->table->schema().row_size());
  return Status::OK();
}

Status Hstore::Write(TxnContext* txn, Row* row, uint8_t* data) {
  CheckAccess(txn, row);
  const uint32_t size = row->table->schema().row_size();
  if (WriteSetEntry* own = txn->FindWrite(row)) {
    if (own->is_delete) return Status::NotFound("deleted by this txn");
    std::memcpy(row->data(), data, size);
    return Status::OK();
  }
  if (row->deleted()) return Status::NotFound("row deleted");
  WriteSetEntry entry;
  entry.row = row;
  entry.new_data = data;
  entry.undo_data =
      static_cast<uint8_t*>(txn->arena()->AllocateCopy(row->data(), size));
  std::memcpy(row->data(), data, size);
  entry.applied = true;
  txn->write_set().push_back(entry);
  return Status::OK();
}

Status Hstore::Insert(TxnContext* txn, Row* row, uint8_t* data) {
  CheckAccess(txn, row);
  std::memcpy(row->data(), data, row->table->schema().row_size());
  WriteSetEntry entry;
  entry.row = row;
  entry.new_data = data;
  entry.is_insert = true;
  entry.applied = true;
  txn->write_set().push_back(entry);
  return Status::OK();
}

Status Hstore::Delete(TxnContext* txn, Row* row) {
  CheckAccess(txn, row);
  if (WriteSetEntry* own = txn->FindWrite(row)) {
    if (own->is_delete) return Status::NotFound("already deleted");
    own->is_delete = true;
    return Status::OK();
  }
  if (row->deleted()) return Status::NotFound("row deleted");
  WriteSetEntry entry;
  entry.row = row;
  entry.is_delete = true;
  const uint32_t size = row->table->schema().row_size();
  entry.new_data =
      static_cast<uint8_t*>(txn->arena()->AllocateCopy(row->data(), size));
  txn->write_set().push_back(entry);
  return Status::OK();
}

Status Hstore::Validate(TxnContext* txn) {
  txn->set_state(TxnState::kValidated);
  return Status::OK();
}

void Hstore::ReleasePartitions(TxnContext* txn) {
  for (uint32_t p : txn->partitions()) partition_locks_[p].Unlock();
}

void Hstore::Finalize(TxnContext* txn) {
  for (auto& entry : txn->write_set()) {
    if (entry.is_delete) entry.row->set_deleted(true);
  }
  ReleasePartitions(txn);
  txn->set_state(TxnState::kCommitted);
}

void Hstore::Abort(TxnContext* txn) {
  const auto& writes = txn->write_set();
  for (auto it = writes.rbegin(); it != writes.rend(); ++it) {
    if (it->is_insert) {
      it->row->table->FreeRow(it->row);
    } else if (it->applied && it->undo_data != nullptr) {
      std::memcpy(it->row->data(), it->undo_data,
                  it->row->table->schema().row_size());
    }
  }
  ReleasePartitions(txn);
  txn->set_state(TxnState::kAborted);
}

}  // namespace next700
