#include "cc/lock_manager.h"

#include <thread>

#include "common/stats.h"

namespace next700 {

namespace {
// Liveness safety valve: a waiter that spins longer than this aborts
// itself. With correct deadlock handling this should never fire; it bounds
// the damage of pathological schedules on oversubscribed hosts.
constexpr uint64_t kWaitTimeoutNs = 2'000'000'000ull;
}  // namespace

LockManager::LockManager(DeadlockPolicy policy)
    // lint: allow-naked-new — construction-time shard array.
    : policy_(policy), shards_(new Shard[kNumShards]) {}

LockManager::Owner* LockManager::LockState::FindOwner(uint64_t txn_id) {
  for (auto& owner : owners) {
    if (owner.txn_id == txn_id) return &owner;
  }
  return nullptr;
}

bool LockManager::LockState::HasConflict(uint64_t txn_id,
                                         LockMode mode) const {
  for (const auto& owner : owners) {
    if (owner.txn_id == txn_id) continue;
    if (mode == LockMode::kExclusive || owner.mode == LockMode::kExclusive) {
      return true;
    }
  }
  return false;
}

void LockManager::LockState::Enqueue(Waiter* waiter) {
  waiter->next = nullptr;
  if (waiter->is_upgrade) {
    // Upgrades go to the head: they hold a shared lock already, so nothing
    // behind them can be granted until they finish anyway.
    waiter->next = wait_head;
    wait_head = waiter;
    if (wait_tail == nullptr) wait_tail = waiter;
    return;
  }
  if (wait_tail == nullptr) {
    wait_head = wait_tail = waiter;
  } else {
    wait_tail->next = waiter;
    wait_tail = waiter;
  }
}

void LockManager::LockState::Dequeue(Waiter* waiter) {
  Waiter** link = &wait_head;
  Waiter* prev = nullptr;
  while (*link != nullptr) {
    if (*link == waiter) {
      *link = waiter->next;
      if (wait_tail == waiter) wait_tail = prev;
      waiter->next = nullptr;
      return;
    }
    prev = *link;
    link = &prev->next;
  }
}

void LockManager::LockState::GrantWaiters() {
  while (wait_head != nullptr) {
    Waiter* waiter = wait_head;
    if (waiter->is_upgrade) {
      if (owners.size() == 1 && owners[0].txn_id == waiter->txn_id) {
        owners[0].mode = LockMode::kExclusive;
        Dequeue(waiter);
        waiter->state.store(Waiter::kGranted, std::memory_order_release);
        continue;
      }
      return;  // Upgrade at head blocks everything behind it.
    }
    if (waiter->mode == LockMode::kShared) {
      if (HasConflict(waiter->txn_id, LockMode::kShared)) return;
    } else {
      if (!owners.empty()) return;
    }
    owners.push_back(Owner{waiter->txn_id, waiter->ts, waiter->mode, waiter->txn});
    Dequeue(waiter);
    waiter->state.store(Waiter::kGranted, std::memory_order_release);
  }
}

LockManager::LockState* LockManager::GetState(Row* row) {
  Shard& shard =
      shards_[(reinterpret_cast<uintptr_t>(row) >> 6) % kNumShards];
  SpinLatchGuard guard(&shard.latch);
  auto it = shard.states.find(row);
  if (it == shard.states.end()) {
    it = shard.states.emplace(row, std::make_unique<LockState>()).first;
  }
  return it->second.get();
}

void LockManager::CollectBlockers(const LockState& state, const Waiter& self,
                                  uint64_t txn_id,
                                  std::vector<uint64_t>* out) {
  out->clear();
  for (const auto& owner : state.owners) {
    if (owner.txn_id != txn_id) out->push_back(owner.txn_id);
  }
  for (const Waiter* w = state.wait_head; w != nullptr && w != &self;
       w = w->next) {
    out->push_back(w->txn_id);
  }
}

bool LockManager::WaitsForGraph::UpdateAndCheckCycle(
    uint64_t waiter, const std::vector<uint64_t>& holders) {
  SpinLatchGuard guard(&latch_);
  edges_[waiter] = holders;
  std::unordered_set<uint64_t> visited;
  for (uint64_t holder : holders) {
    if (HasPathTo(holder, waiter, &visited)) {
      // This request closed the cycle: it is the victim. Drop its edges
      // under the same latch so concurrent detectors cannot also see the
      // (now broken) cycle and kill a second transaction needlessly.
      edges_.erase(waiter);
      return true;
    }
  }
  return false;
}

bool LockManager::WaitsForGraph::HasPathTo(
    uint64_t from, uint64_t target,
    std::unordered_set<uint64_t>* visited) const {
  if (from == target) return true;
  if (!visited->insert(from).second) return false;
  auto it = edges_.find(from);
  if (it == edges_.end()) return false;
  for (uint64_t next : it->second) {
    if (HasPathTo(next, target, visited)) return true;
  }
  return false;
}

void LockManager::WaitsForGraph::Remove(uint64_t waiter) {
  SpinLatchGuard guard(&latch_);
  edges_.erase(waiter);
}

Status LockManager::Wait(TxnContext* txn, LockState* state, Waiter* waiter,
                         Row* row) {
  if (txn->stats() != nullptr) ++txn->stats()->lock_waits;
  const uint64_t deadline = NowNanos() + kWaitTimeoutNs;
  std::vector<uint64_t> blockers;
  uint64_t spins = 0;
  for (;;) {
    if (waiter->state.load(std::memory_order_acquire) == Waiter::kGranted) {
      if (!waiter->is_upgrade) txn->held_locks().push_back(row);
      if (policy_ == DeadlockPolicy::kDlDetect) graph_.Remove(txn->txn_id());
      return Status::OK();
    }
    ++spins;
    if ((spins & 63) == 0) {
      std::this_thread::yield();
    } else {
      CpuRelax();
    }

    const bool check_deadlock =
        policy_ == DeadlockPolicy::kDlDetect && (spins & 511) == 0;
    const bool timed_out = (spins & 1023) == 0 && NowNanos() > deadline;
    const bool wounded =
        policy_ == DeadlockPolicy::kWoundWait && txn->wounded();
    if (!check_deadlock && !timed_out && !wounded) continue;

    bool victim = timed_out || wounded;
    if (check_deadlock && !victim) {
      state->Lock();
      if (waiter->state.load(std::memory_order_relaxed) == Waiter::kGranted) {
        state->Unlock();
        continue;
      }
      CollectBlockers(*state, *waiter, txn->txn_id(), &blockers);
      state->Unlock();
      victim = graph_.UpdateAndCheckCycle(txn->txn_id(), blockers);
    }
    if (!victim) continue;

    // Abort this request: dequeue unless a grant raced us.
    state->Lock();
    if (waiter->state.load(std::memory_order_relaxed) == Waiter::kGranted) {
      state->Unlock();
      continue;  // Grant won the race; take the lock after all.
    }
    state->Dequeue(waiter);
    // An upgrade waiter keeps its original shared lock; nothing to undo.
    GrantAfterDequeue(state);
    state->Unlock();
    if (policy_ == DeadlockPolicy::kDlDetect) graph_.Remove(txn->txn_id());
    if (wounded) return Status::Aborted("wounded by older transaction");
    return Status::Aborted(timed_out ? "lock wait timeout" : "deadlock");
  }
}

void LockManager::WoundYoungerConflicts(LockState* state, TxnContext* txn,
                                        LockMode mode) {
  // Wound-wait: the older requester marks every younger conflicting holder
  // (and younger queued waiter) for death, then waits. Victims notice at
  // their next lock operation or inside their wait loop. A victim that has
  // already entered commit finishes and releases normally — it never waits
  // again, so deadlock freedom is preserved either way.
  for (const auto& owner : state->owners) {
    if (owner.txn_id == txn->txn_id()) continue;
    const bool conflicts =
        mode == LockMode::kExclusive || owner.mode == LockMode::kExclusive;
    if (conflicts && owner.ts > txn->ts()) owner.txn->set_wounded();
  }
  for (Waiter* w = state->wait_head; w != nullptr; w = w->next) {
    if (w->ts > txn->ts()) w->txn->set_wounded();
  }
}

Status LockManager::Acquire(TxnContext* txn, Row* row, LockMode mode) {
  LockState* state = GetState(row);
  state->Lock();

  Owner* own = state->FindOwner(txn->txn_id());
  if (own != nullptr) {
    if (own->mode == LockMode::kExclusive || mode == LockMode::kShared) {
      state->Unlock();
      return Status::OK();  // Already held at sufficient strength.
    }
    // Upgrade S -> X.
    if (state->owners.size() == 1) {
      own->mode = LockMode::kExclusive;
      state->Unlock();
      return Status::OK();
    }
    if (policy_ == DeadlockPolicy::kNoWait) {
      state->Unlock();
      return Status::Aborted("upgrade conflict (no-wait)");
    }
    if (policy_ == DeadlockPolicy::kWaitDie) {
      for (const auto& owner : state->owners) {
        if (owner.txn_id != txn->txn_id() && txn->ts() >= owner.ts) {
          state->Unlock();
          return Status::Aborted("upgrade conflict (wait-die: die)");
        }
      }
    }
    if (policy_ == DeadlockPolicy::kWoundWait) {
      WoundYoungerConflicts(state, txn, LockMode::kExclusive);
    }
    Waiter waiter;
    waiter.txn_id = txn->txn_id();
    waiter.ts = txn->ts();
    waiter.mode = LockMode::kExclusive;
    waiter.is_upgrade = true;
    waiter.txn = txn;
    state->Enqueue(&waiter);
    state->Unlock();
    return Wait(txn, state, &waiter, row);
  }

  const bool queue_empty = state->wait_head == nullptr;
  if (queue_empty && !state->HasConflict(txn->txn_id(), mode)) {
    state->owners.push_back(Owner{txn->txn_id(), txn->ts(), mode, txn});
    state->Unlock();
    txn->held_locks().push_back(row);
    return Status::OK();
  }

  if (policy_ == DeadlockPolicy::kNoWait) {
    state->Unlock();
    return Status::Aborted("lock conflict (no-wait)");
  }
  if (policy_ == DeadlockPolicy::kWaitDie) {
    // The requester may wait only if it is older than every conflicting
    // owner and every queued waiter (waiting on a younger txn only).
    for (const auto& owner : state->owners) {
      const bool conflicts = mode == LockMode::kExclusive ||
                             owner.mode == LockMode::kExclusive;
      if (conflicts && txn->ts() >= owner.ts) {
        state->Unlock();
        return Status::Aborted("lock conflict (wait-die: die)");
      }
    }
    for (const Waiter* w = state->wait_head; w != nullptr; w = w->next) {
      if (txn->ts() >= w->ts) {
        state->Unlock();
        return Status::Aborted("lock conflict (wait-die: die)");
      }
    }
  }

  if (policy_ == DeadlockPolicy::kWoundWait) {
    WoundYoungerConflicts(state, txn, mode);
  }

  Waiter waiter;
  waiter.txn_id = txn->txn_id();
  waiter.ts = txn->ts();
  waiter.mode = mode;
  waiter.is_upgrade = false;
  waiter.txn = txn;
  state->Enqueue(&waiter);
  state->Unlock();
  return Wait(txn, state, &waiter, row);
}

void LockManager::GrantAfterDequeue(LockState* state) {
  // Removing a waiter from the middle of the queue can unblock those behind
  // it (e.g. an aborted X waiter that separated two groups of S waiters).
  state->GrantWaiters();
}

void LockManager::ReleaseAll(TxnContext* txn) {
  for (Row* row : txn->held_locks()) {
    LockState* state = GetState(row);
    state->Lock();
    for (size_t i = 0; i < state->owners.size(); ++i) {
      if (state->owners[i].txn_id == txn->txn_id()) {
        state->owners.erase(state->owners.begin() + i);
        break;
      }
    }
    state->GrantWaiters();
    state->Unlock();
  }
  txn->held_locks().clear();
}

}  // namespace next700
