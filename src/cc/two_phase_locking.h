#ifndef NEXT700_CC_TWO_PHASE_LOCKING_H_
#define NEXT700_CC_TWO_PHASE_LOCKING_H_

/// \file
/// Strict two-phase locking over the shared lock manager. One class covers
/// the NO_WAIT / WAIT_DIE / DL_DETECT family — the deadlock policy is the
/// only moving part, which is exactly the kind of single-axis variation the
/// composable-engine argument is about.
///
/// Writes are applied in place at execution time (after the X lock is
/// granted) with before-images kept in the transaction arena for rollback.
/// Strictness (locks released only after commit/abort completes) gives
/// recoverable, cascadeless schedules.

#include "cc/cc.h"
#include "cc/lock_manager.h"
#include "common/timestamp.h"

namespace next700 {

class TwoPhaseLocking : public ConcurrencyControl {
 public:
  TwoPhaseLocking(CcScheme scheme, TimestampAllocator* ts_allocator);

  CcScheme scheme() const override { return scheme_; }

  Status Begin(TxnContext* txn) override;
  Status Read(TxnContext* txn, Row* row, uint8_t* out) override;
  Status ReadForUpdate(TxnContext* txn, Row* row, uint8_t* out) override;
  Status Write(TxnContext* txn, Row* row, uint8_t* data) override;
  Status Insert(TxnContext* txn, Row* row, uint8_t* data) override;
  Status Delete(TxnContext* txn, Row* row) override;
  Status Validate(TxnContext* txn) override;
  void Finalize(TxnContext* txn) override;
  void Abort(TxnContext* txn) override;

  LockManager* lock_manager() { return &lock_manager_; }

 private:
  static DeadlockPolicy PolicyFor(CcScheme scheme);

  CcScheme scheme_;
  LockManager lock_manager_;
  TimestampAllocator* ts_allocator_;
};

}  // namespace next700

#endif  // NEXT700_CC_TWO_PHASE_LOCKING_H_
