#ifndef NEXT700_CC_HSTORE_H_
#define NEXT700_CC_HSTORE_H_

/// \file
/// H-Store-style partition-level concurrency control (Stonebraker et al.,
/// VLDB 2007). The database is split into partitions; a transaction locks
/// its entire partition set up front (in sorted order, so multi-partition
/// transactions cannot deadlock) and then runs with no per-row concurrency
/// control at all — the "serial execution per partition" design whose
/// single-partition speed and multi-partition collapse the crossover
/// experiment (F7) reproduces.
///
/// Transactions that do not declare partitions lock everything, mirroring
/// H-Store's fallback for unpartitionable work.

#include <memory>
#include <vector>

#include "cc/cc.h"
#include "common/latch.h"
#include "common/thread_safety.h"

namespace next700 {

class Hstore : public ConcurrencyControl {
 public:
  explicit Hstore(uint32_t num_partitions);

  CcScheme scheme() const override { return CcScheme::kHstore; }

  Status Begin(TxnContext* txn) override;
  Status Read(TxnContext* txn, Row* row, uint8_t* out) override;
  Status Write(TxnContext* txn, Row* row, uint8_t* data) override;
  Status Insert(TxnContext* txn, Row* row, uint8_t* data) override;
  Status Delete(TxnContext* txn, Row* row) override;
  Status Validate(TxnContext* txn) override;
  void Finalize(TxnContext* txn) override;
  void Abort(TxnContext* txn) override;

  uint32_t num_partitions() const { return num_partitions_; }

 private:
  // Begin latches the transaction's whole (data-dependent, sorted)
  // partition set and holds it across the transaction until Finalize/Abort
  // releases it — a lock-set-spanning-function-calls pattern TSA cannot
  // model, so analysis is disabled on the acquire/release pair.
  void LockPartitions(const TxnContext::PartitionSet& parts)
      NO_THREAD_SAFETY_ANALYSIS;
  void ReleasePartitions(TxnContext* txn) NO_THREAD_SAFETY_ANALYSIS;

  /// DCHECK helper: the row must belong to a locked partition.
  void CheckAccess(const TxnContext* txn, const Row* row) const;

  uint32_t num_partitions_;
  std::unique_ptr<SpinLatch[]> partition_locks_;
};

}  // namespace next700

#endif  // NEXT700_CC_HSTORE_H_
