#ifndef NEXT700_CC_TIMESTAMP_ORDERING_H_
#define NEXT700_CC_TIMESTAMP_ORDERING_H_

/// \file
/// Basic timestamp ordering (Bernstein & Goodman). Every transaction gets a
/// begin timestamp that fixes its position in the serial order; reads and
/// writes that arrive "too late" relative to a row's read/write timestamps
/// abort. Writes are deferred to commit (keeping the schedule recoverable
/// without a pre-write table) and the Thomas write rule silently drops
/// writes that are older than the installed version.

#include "cc/cc.h"
#include "common/timestamp.h"

namespace next700 {

class TimestampOrdering : public ConcurrencyControl {
 public:
  explicit TimestampOrdering(TimestampAllocator* ts_allocator)
      : ts_allocator_(ts_allocator) {}

  CcScheme scheme() const override { return CcScheme::kTimestamp; }

  Status Begin(TxnContext* txn) override;
  Status Read(TxnContext* txn, Row* row, uint8_t* out) override;
  Status Write(TxnContext* txn, Row* row, uint8_t* data) override;
  Status Insert(TxnContext* txn, Row* row, uint8_t* data) override;
  Status Delete(TxnContext* txn, Row* row) override;
  Status Validate(TxnContext* txn) override;
  void Finalize(TxnContext* txn) override;
  void Abort(TxnContext* txn) override;

 private:
  static void UnlatchWriteSet(TxnContext* txn);

  TimestampAllocator* ts_allocator_;
};

}  // namespace next700

#endif  // NEXT700_CC_TIMESTAMP_ORDERING_H_
