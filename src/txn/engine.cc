#include "txn/engine.h"

#include <cstring>

#include "cc/hstore.h"
#include "cc/occ_silo.h"
#include "cc/snapshot_isolation.h"
#include "cc/tictoc.h"
#include "cc/timestamp_ordering.h"
#include "cc/two_phase_locking.h"
#include "log/checkpoint.h"
#include "log/manifest.h"
#include "log/recovery.h"

namespace next700 {

Engine::Engine(EngineOptions options) : options_(std::move(options)) {
  NEXT700_CHECK(options_.max_threads > 0);
  NEXT700_CHECK(options_.num_partitions > 0);
  if (options_.cc_scheme == CcScheme::kSi) {
    // SI correctness is tied to real time: a batched timestamp can lie in
    // the past, which breaks both snapshot stability (a commit at a lower
    // wts materializes inside an already-taken snapshot) and
    // first-committer-wins (the conflicting version is not "newer than the
    // snapshot"). MVTO has no such dependence — it serializes in timestamp
    // order whatever the wall-clock order — so only SI keeps the
    // restriction (see DESIGN.md, memory model).
    NEXT700_CHECK_MSG(
        options_.ts_allocator == TimestampAllocatorKind::kAtomic,
        "SI requires the atomic timestamp allocator");
  }
  ts_allocator_ =
      TimestampAllocator::Create(options_.ts_allocator, options_.max_threads);
  tracker_ = std::make_unique<ActiveTxnTracker>(options_.max_threads);

  switch (options_.cc_scheme) {
    case CcScheme::kNoWait:
    case CcScheme::kWaitDie:
    case CcScheme::kWoundWait:
    case CcScheme::kDlDetect:
      cc_ = std::make_unique<TwoPhaseLocking>(options_.cc_scheme,
                                              ts_allocator_.get());
      break;
    case CcScheme::kTimestamp:
      cc_ = std::make_unique<TimestampOrdering>(ts_allocator_.get());
      break;
    case CcScheme::kOcc:
      cc_ = std::make_unique<OccSilo>();
      break;
    case CcScheme::kTicToc:
      cc_ = std::make_unique<TicToc>();
      break;
    case CcScheme::kMvto:
      cc_ = std::make_unique<Mvto>(ts_allocator_.get(), tracker_.get(),
                                   options_.mvcc_gc);
      break;
    case CcScheme::kSi:
      cc_ = std::make_unique<SnapshotIsolation>(
          ts_allocator_.get(), tracker_.get(), options_.mvcc_gc);
      break;
    case CcScheme::kHstore:
      cc_ = std::make_unique<Hstore>(options_.num_partitions);
      break;
  }

  if (cc_->is_multiversion()) {
    // One extra epoch slot (index max_threads) pins the checkpointer's
    // fuzzy scans; it sits idle when no checkpoint_dir is configured.
    epochs_ = std::make_unique<EpochManager>(options_.max_threads + 1);
    pools_.reserve(options_.max_threads);
    for (int i = 0; i < options_.max_threads; ++i) {
      pools_.push_back(std::make_unique<VersionPool>(epochs_.get(), i));
    }
  }
  workers_.reset(new WorkerState[options_.max_threads]);

  contexts_.reserve(options_.max_threads);
  for (int i = 0; i < options_.max_threads; ++i) {
    contexts_.push_back(std::make_unique<TxnContext>(i));
    contexts_[i]->set_version_pool(version_pool(i));
  }
  stats_.reset(new ThreadStats[options_.max_threads]);

  // The checkpoint MANIFEST carries the log's base bookkeeping: after
  // truncation the earliest surviving segment no longer starts at LSN 0,
  // and the log must resume the LSN space from the recorded base.
  uint64_t log_base_index = 0;
  Lsn log_base_lsn = 0;
  if (!options_.checkpoint_dir.empty()) {
    CheckpointManifest manifest;
    const Status ms = ReadManifest(options_.checkpoint_dir, &manifest);
    NEXT700_CHECK_MSG(ms.ok() || ms.IsNotFound(),
                      "corrupt checkpoint MANIFEST");
    if (ms.ok()) {
      log_base_index = manifest.log_base_index;
      log_base_lsn = manifest.log_base_lsn;
    }
  }

  if (options_.logging != LoggingKind::kNone) {
    NEXT700_CHECK_MSG(!options_.log_dir.empty(),
                      "logging enabled without log_dir");
    LogManagerOptions log_options;
    log_options.dir = options_.log_dir;
    log_options.flush_interval_us = options_.log_flush_interval_us;
    log_options.device_latency_us = options_.log_device_latency_us;
    log_options.sync_policy = options_.log_sync;
    log_options.segment_bytes = options_.log_segment_bytes;
    log_options.file_factory = options_.log_file_factory;
    log_options.io_backend = options_.log_io_backend;
    log_options.base_index = log_base_index;
    log_options.base_lsn = log_base_lsn;
    log_ = std::make_unique<LogManager>(log_options);
    NEXT700_CHECK_MSG(log_->Open().ok(), "cannot open log");
  }

  if (!options_.checkpoint_dir.empty()) {
    txn_gate_enabled_ = true;
    CheckpointerOptions ckpt_options;
    ckpt_options.dir = options_.checkpoint_dir;
    ckpt_options.interval_ms = options_.checkpoint_interval_ms;
    ckpt_options.truncate_log = options_.checkpoint_truncates_log;
    ckpt_options.crash_hook = options_.checkpoint_crash_hook;
    checkpointer_ =
        std::make_unique<CheckpointCoordinator>(this, std::move(ckpt_options));
    NEXT700_CHECK_MSG(checkpointer_->Prepare().ok(),
                      "cannot prepare checkpoint dir");
  }
}

Engine::~Engine() {
  // Stop the checkpointer before anything it scans (tables, epochs, log)
  // goes away.
  if (checkpointer_ != nullptr) checkpointer_->Stop();
  // Drain retired versions into the pools while both (and the tables whose
  // chains still reference pooled blocks) are alive; afterwards the member
  // destructor order no longer matters.
  if (epochs_ != nullptr) epochs_->ReclaimAll();
  if (log_ != nullptr) log_->Close();
}

void Engine::StartCheckpointer() {
  NEXT700_CHECK_MSG(checkpointer_ != nullptr, "no checkpoint_dir configured");
  checkpointer_->Start();
}

Status Engine::TriggerCheckpoint(CheckpointStats* stats) {
  NEXT700_CHECK_MSG(checkpointer_ != nullptr, "no checkpoint_dir configured");
  return checkpointer_->CheckpointNow(stats);
}

void Engine::EnterTxnGate(int thread_id) {
  if (!txn_gate_enabled_) return;
  WorkerState& worker = workers_[thread_id];
  for (;;) {
    // Dekker pairing with PauseTransactions: our in_txn store and its
    // gate_closed_ store are both seq_cst, so either we see the gate
    // closed (and back off) or the pauser sees our in_txn and waits.
    worker.in_txn.store(1, std::memory_order_seq_cst);
    if (!gate_closed_.load(std::memory_order_seq_cst)) return;
    worker.in_txn.store(0, std::memory_order_seq_cst);
    MutexLock lock(&gate_mu_);
    gate_cv_.NotifyAll();  // The pauser may be waiting on our in_txn.
    while (gate_closed_.load(std::memory_order_acquire)) {
      gate_cv_.Wait(&gate_mu_);
    }
  }
}

void Engine::ExitTxnGate(int thread_id) {
  if (!txn_gate_enabled_) return;
  workers_[thread_id].in_txn.store(0, std::memory_order_seq_cst);
  if (gate_closed_.load(std::memory_order_seq_cst)) {
    MutexLock lock(&gate_mu_);
    gate_cv_.NotifyAll();
  }
}

void Engine::PauseTransactions() {
  MutexLock lock(&gate_mu_);
  NEXT700_CHECK_MSG(!gate_closed_.load(std::memory_order_relaxed),
                    "nested transaction pause");
  gate_closed_.store(true, std::memory_order_seq_cst);
  for (;;) {
    bool any_in_txn = false;
    for (int i = 0; i < options_.max_threads; ++i) {
      if (workers_[i].in_txn.load(std::memory_order_seq_cst) != 0) {
        any_in_txn = true;
        break;
      }
    }
    if (!any_in_txn) break;
    gate_cv_.Wait(&gate_mu_);
  }
}

void Engine::ResumeTransactions() {
  {
    MutexLock lock(&gate_mu_);
    gate_closed_.store(false, std::memory_order_seq_cst);
  }
  gate_cv_.NotifyAll();
}

Table* Engine::CreateTable(std::string name, Schema schema) {
  return catalog_.CreateTable(std::move(name), std::move(schema),
                              options_.num_partitions);
}

Index* Engine::CreateIndex(std::string name, Table* table, IndexKind kind,
                           uint64_t capacity_hint) {
  return catalog_.CreateIndex(std::move(name), table, kind, capacity_hint);
}

void Engine::RegisterProcedure(uint32_t proc_id, Procedure procedure,
                               bool read_only) {
  NEXT700_CHECK_MSG(GetProcedure(proc_id) == nullptr,
                    "duplicate procedure id");
  procedures_.push_back(
      ProcedureEntry{proc_id, std::move(procedure), read_only});
}

const Procedure* Engine::GetProcedure(uint32_t proc_id) const {
  for (const auto& entry : procedures_) {
    if (entry.proc_id == proc_id) return &entry.procedure;
  }
  return nullptr;
}

bool Engine::IsProcedureReadOnly(uint32_t proc_id) const {
  for (const auto& entry : procedures_) {
    if (entry.proc_id == proc_id) return entry.read_only;
  }
  return false;
}

TxnContext* Engine::Begin(int thread_id,
                          const std::vector<uint32_t>& partitions) {
  NEXT700_DCHECK(thread_id >= 0 && thread_id < options_.max_threads);
  EnterTxnGate(thread_id);
  TxnContext* txn = contexts_[thread_id].get();
  NEXT700_DCHECK(txn->state() != TxnState::kActive &&
                 txn->state() != TxnState::kValidated);
  txn->Reset();
  WorkerState& worker = workers_[thread_id];
  if (worker.next_txn_id == worker.txn_id_end) {
    worker.next_txn_id =
        next_txn_id_.fetch_add(kTxnIdBatch, std::memory_order_relaxed);
    worker.txn_id_end = worker.next_txn_id + kTxnIdBatch;
  }
  txn->set_txn_id(worker.next_txn_id++);
  txn->set_stats(&stats_[thread_id]);
  txn->partitions().assign(partitions.begin(), partitions.end());
  if (epochs_ != nullptr) epochs_->Enter(thread_id);
  const Status s = cc_->Begin(txn);
  NEXT700_CHECK_MSG(s.ok(), "Begin must not fail");
  return txn;
}

Status Engine::Read(TxnContext* txn, Index* index, uint64_t key,
                    uint8_t* out) {
  Row* row = index->Lookup(key);
  if (row == nullptr) return Status::NotFound("key not in index");
  return ReadRow(txn, row, out);
}

Status Engine::ReadRow(TxnContext* txn, Row* row, uint8_t* out) {
  ++txn->stats()->reads;
  return cc_->Read(txn, row, out);
}

Status Engine::ReadForUpdate(TxnContext* txn, Index* index, uint64_t key,
                             uint8_t* out) {
  Row* row = index->Lookup(key);
  if (row == nullptr) return Status::NotFound("key not in index");
  return ReadRowForUpdate(txn, row, out);
}

Status Engine::ReadRowForUpdate(TxnContext* txn, Row* row, uint8_t* out) {
  ++txn->stats()->reads;
  return cc_->ReadForUpdate(txn, row, out);
}

Status Engine::Update(TxnContext* txn, Index* index, uint64_t key,
                      const void* data) {
  Row* row = index->Lookup(key);
  if (row == nullptr) return Status::NotFound("key not in index");
  return UpdateRow(txn, row, data);
}

Status Engine::UpdateRow(TxnContext* txn, Row* row, const void* data) {
  ++txn->stats()->writes;
  uint8_t* copy = static_cast<uint8_t*>(
      txn->arena()->AllocateCopy(data, row->table->schema().row_size()));
  return cc_->Write(txn, row, copy);
}

Result<Row*> Engine::Insert(TxnContext* txn, Table* table, uint32_t partition,
                            uint64_t primary_key, const void* data) {
  ++txn->stats()->inserts;
  Row* row = table->AllocateRow(partition);
  row->primary_key = primary_key;
  uint8_t* copy = static_cast<uint8_t*>(
      txn->arena()->AllocateCopy(data, table->schema().row_size()));
  const Status s = cc_->Insert(txn, row, copy);
  if (!s.ok()) {
    table->FreeRow(row);
    return s;
  }
  return row;
}

Status Engine::Delete(TxnContext* txn, Row* row) {
  ++txn->stats()->writes;
  return cc_->Delete(txn, row);
}

void Engine::AddIndexInsert(TxnContext* txn, Index* index, uint64_t key,
                            Row* row) {
  txn->index_ops().push_back(IndexOp{index, key, row, /*is_insert=*/true});
}

void Engine::AddIndexRemove(TxnContext* txn, Index* index, uint64_t key,
                            Row* row) {
  txn->index_ops().push_back(IndexOp{index, key, row, /*is_insert=*/false});
}

Status Engine::Scan(TxnContext* txn, Index* index, uint64_t lo, uint64_t hi,
                    size_t limit, std::vector<Row*>* out) {
  ++txn->stats()->scans;
  return index->Scan(lo, hi, limit, out);
}

Status Engine::ScanReverse(TxnContext* txn, Index* index, uint64_t hi,
                           uint64_t lo, size_t limit,
                           std::vector<Row*>* out) {
  ++txn->stats()->scans;
  return index->ScanReverse(hi, lo, limit, out);
}

Timestamp Engine::ReplayCommitTimestamp(const TxnContext* txn) const {
  // Replay-ordering timestamp. Lock-based schemes serialize in commit
  // (= append) order, which a begin timestamp does not reflect; they log 0,
  // telling replay "apply in log order". Timestamp-based schemes log their
  // serialization timestamp so replay can apply the Thomas write rule.
  switch (options_.cc_scheme) {
    case CcScheme::kNoWait:
    case CcScheme::kWaitDie:
    case CcScheme::kWoundWait:
    case CcScheme::kDlDetect:
    case CcScheme::kHstore:
      return 0;
    default:
      return txn->commit_ts() != kInvalidTimestamp ? txn->commit_ts()
                                                   : txn->ts();
  }
}

void Engine::StageValueBody(TxnContext* txn, Timestamp commit_ts,
                            TxnContext::ByteBuffer* body) {
  BasicLogWriter<TxnContext::ByteBuffer> writer(body);
  writer.PutU64(commit_ts);
  writer.PutU32(static_cast<uint32_t>(txn->write_set().size()));
  for (const auto& entry : txn->write_set()) {
    const Table* table = entry.row->table;
    writer.PutU32(table->id());
    writer.PutU32(entry.row->partition);
    writer.PutU64(entry.row->primary_key);
    LogWriteKind kind = LogWriteKind::kUpdate;
    if (entry.is_insert) kind = LogWriteKind::kInsert;
    if (entry.is_delete) kind = LogWriteKind::kDelete;
    writer.PutU8(static_cast<uint8_t>(kind));
    if (entry.is_delete) {
      writer.PutU32(0);
    } else {
      const uint8_t* image = entry.version != nullptr ? entry.version->data()
                                                      : entry.new_data;
      writer.PutU32(table->schema().row_size());
      writer.PutBytes(image, table->schema().row_size());
    }
  }
}

Status Engine::AppendCommitRecord(TxnContext* txn) {
  if (txn->write_set().empty()) return Status::OK();  // Read-only.

  // Stage the record body in the txn's arena-backed buffer: no per-commit
  // heap allocation, and the bytes are reclaimed wholesale by Reset().
  TxnContext::ByteBuffer& body = txn->log_staging();
  body.clear();
  LogRecordType type;
  const Timestamp commit_ts = ReplayCommitTimestamp(txn);
  if (options_.logging == LoggingKind::kCommand && txn->has_procedure()) {
    type = LogRecordType::kTxnCommand;
    BasicLogWriter<TxnContext::ByteBuffer> writer(&body);
    writer.PutU64(commit_ts);
    writer.PutU32(txn->proc_id());
    writer.PutU32(static_cast<uint32_t>(txn->proc_args().size()));
    writer.PutBytes(txn->proc_args().data(), txn->proc_args().size());
  } else {
    // Value logging (also the fallback for ad-hoc command-logged txns).
    type = LogRecordType::kTxnValue;
    StageValueBody(txn, commit_ts, &body);
  }
  const Lsn lsn = log_->Append(type, body.data(), body.size());
  txn->set_commit_lsn(lsn);
  txn->stats()->log_bytes += body.size() + kFrameOverheadBytes;
  return Status::OK();
}

void Engine::ApplyIndexOps(TxnContext* txn) {
  for (const auto& op : txn->index_ops()) {
    if (op.is_insert) {
      const Status s = op.index->Insert(op.key, op.row);
      NEXT700_CHECK_MSG(s.ok(), "post-commit index insert failed");
    } else {
      op.index->Remove(op.key, op.row);
    }
  }
}

Status Engine::Commit(TxnContext* txn) {
  Status s = cc_->Validate(txn);
  if (!s.ok()) return s;
  // Replay mode: the record being re-executed is already in the log (or is
  // being mirrored verbatim by a replica's AppendRaw) — logging it again
  // would duplicate history. commit_lsn stays 0, which also skips the
  // durability wait below.
  if (log_ != nullptr && !replay_mode_.load(std::memory_order_relaxed)) {
    s = AppendCommitRecord(txn);
    NEXT700_CHECK_MSG(s.ok(), "log append failed");
  }
  cc_->Finalize(txn);
  ApplyIndexOps(txn);
  FinishEpoch(txn);
  ++txn->stats()->commits;
  // The checkpoint gate opens before the durability wait: the txn's effects
  // are finalized, so a snapshot taken from here on is consistent, and a
  // paused checkpointer must not wait on a flush it may itself be behind.
  ExitTxnGate(txn->thread_id());
  // Durability wait comes after Finalize (early lock release, Aether-style):
  // locks are not held across the flush, and any dependent transaction gets
  // a higher LSN, so it cannot be acknowledged before this one. On a log
  // device failure the commit stands in memory but the caller learns the
  // acknowledgement must not be given.
  if (log_ != nullptr && options_.sync_commit && !txn->defer_durable() &&
      txn->commit_lsn() > 0) {
    return log_->WaitDurable(txn->commit_lsn());
  }
  return Status::OK();
}

void Engine::Abort(TxnContext* txn) {
  // A transaction that finalized but failed its durability wait has nothing
  // to roll back; retry loops that Abort on any !ok status land here.
  if (txn->state() == TxnState::kCommitted) return;
  cc_->Abort(txn);
  FinishEpoch(txn);
  ++txn->stats()->aborts;
  ExitTxnGate(txn->thread_id());
}

void Engine::AbortUser(TxnContext* txn) {
  if (txn->state() == TxnState::kCommitted) return;
  cc_->Abort(txn);
  FinishEpoch(txn);
  ++txn->stats()->user_aborts;
  ExitTxnGate(txn->thread_id());
}

Status Engine::Prepare(TxnContext* txn, uint64_t gtid) {
  NEXT700_CHECK_MSG(log_ != nullptr, "2PC requires logging");
  Status s = cc_->Validate(txn);
  if (!s.ok()) return s;
  txn->set_gtid(gtid);
  // A read-only branch has nothing to redo — commit and abort are
  // indistinguishable — so it logs nothing and its outcome is never logged
  // either (recovery would reject a commit outcome without a prepare).
  if (!txn->write_set().empty() &&
      !replay_mode_.load(std::memory_order_relaxed)) {
    TxnContext::ByteBuffer& body = txn->log_staging();
    body.clear();
    BasicLogWriter<TxnContext::ByteBuffer> writer(&body);
    writer.PutU64(gtid);
    StageValueBody(txn, ReplayCommitTimestamp(txn), &body);
    const Lsn lsn =
        log_->Append(LogRecordType::kTxnPrepare, body.data(), body.size());
    txn->set_prepare_lsn(lsn);
    txn->stats()->log_bytes += body.size() + kFrameOverheadBytes;
    // Prepare durable before vote: once the yes vote leaves this shard the
    // coordinator may decide commit, and only the durable redo lets
    // recovery honor that decision after kill -9. On a device failure the
    // caller votes no and Aborts; the orphaned prepare (if any of it
    // reached disk) resolves to abort under presumed abort.
    s = log_->WaitDurable(lsn);
    if (!s.ok()) return s;
  }
  txn->set_prepared(true);
  return Status::OK();
}

Status Engine::CommitPrepared(TxnContext* txn) {
  NEXT700_CHECK_MSG(txn->prepared(), "CommitPrepared on unprepared txn");
  if (txn->prepare_lsn() > 0 &&
      !replay_mode_.load(std::memory_order_relaxed)) {
    TxnContext::ByteBuffer& body = txn->log_staging();
    body.clear();
    BasicLogWriter<TxnContext::ByteBuffer> writer(&body);
    writer.PutU64(txn->gtid());
    writer.PutU8(1);
    // Appended before Finalize releases the locks, so a conflicting later
    // transaction's commit record always lands behind this outcome.
    const Lsn lsn =
        log_->Append(LogRecordType::kTxnOutcome, body.data(), body.size());
    txn->set_commit_lsn(lsn);
    txn->stats()->log_bytes += body.size() + kFrameOverheadBytes;
  }
  cc_->Finalize(txn);
  ApplyIndexOps(txn);
  FinishEpoch(txn);
  ++txn->stats()->commits;
  ExitTxnGate(txn->thread_id());
  if (log_ != nullptr && options_.sync_commit && !txn->defer_durable() &&
      txn->commit_lsn() > 0) {
    return log_->WaitDurable(txn->commit_lsn());
  }
  return Status::OK();
}

void Engine::AbortPrepared(TxnContext* txn) {
  if (txn->prepare_lsn() > 0 &&
      !replay_mode_.load(std::memory_order_relaxed)) {
    TxnContext::ByteBuffer& body = txn->log_staging();
    body.clear();
    BasicLogWriter<TxnContext::ByteBuffer> writer(&body);
    writer.PutU64(txn->gtid());
    writer.PutU8(0);
    // No durability wait: under presumed abort a lost abort outcome only
    // leaves the gtid in doubt, and the coordinator re-answers abort.
    log_->Append(LogRecordType::kTxnOutcome, body.data(), body.size());
    txn->stats()->log_bytes += body.size() + kFrameOverheadBytes;
  }
  cc_->Abort(txn);
  FinishEpoch(txn);
  ++txn->stats()->aborts;
  ExitTxnGate(txn->thread_id());
}

void Engine::SetInDoubt(std::map<uint64_t, std::vector<uint8_t>> in_doubt,
                        std::function<void(Engine*, Row*)> rebuilder) {
  MutexLock lock(&in_doubt_mu_);
  in_doubt_ = std::move(in_doubt);
  in_doubt_rebuilder_ = std::move(rebuilder);
}

bool Engine::has_in_doubt() const {
  MutexLock lock(&in_doubt_mu_);
  return !in_doubt_.empty();
}

std::vector<uint64_t> Engine::InDoubtGtids() const {
  MutexLock lock(&in_doubt_mu_);
  std::vector<uint64_t> gtids;
  gtids.reserve(in_doubt_.size());
  for (const auto& entry : in_doubt_) gtids.push_back(entry.first);
  return gtids;
}

Status Engine::ResolveInDoubt(uint64_t gtid, bool commit) {
  NEXT700_CHECK_MSG(log_ != nullptr, "2PC requires logging");
  MutexLock lock(&in_doubt_mu_);
  auto it = in_doubt_.find(gtid);
  if (it == in_doubt_.end()) return Status::NotFound("gtid not in doubt");
  std::vector<uint8_t> body;
  LogWriter writer(&body);
  writer.PutU64(gtid);
  writer.PutU8(commit ? 1 : 0);
  const Lsn lsn =
      log_->Append(LogRecordType::kTxnOutcome, body.data(), body.size());
  if (commit) {
    // The outcome must be durable before the redo becomes visible: a crash
    // right after the apply must replay to the same committed state.
    NEXT700_RETURN_IF_ERROR(log_->WaitDurable(lsn));
    RecoveryManager recovery(this);
    recovery.set_secondary_rebuilder(in_doubt_rebuilder_);
    RecoveryStats stats;
    NEXT700_RETURN_IF_ERROR(recovery.ApplyRedoBody(
        it->second.data(), it->second.size(), &stats));
  }
  in_doubt_.erase(it);
  return Status::OK();
}

Status Engine::RunProcedure(uint32_t proc_id, int thread_id, const void* args,
                            size_t arg_len,
                            const std::vector<uint32_t>& partitions) {
  const Procedure* proc = GetProcedure(proc_id);
  NEXT700_CHECK_MSG(proc != nullptr, "unknown procedure");
  TxnContext* txn = Begin(thread_id, partitions);
  txn->SetProcedure(proc_id, args, arg_len);
  Status s = (*proc)(this, txn, static_cast<const uint8_t*>(args), arg_len);
  if (s.ok()) s = Commit(txn);
  if (!s.ok()) {
    if (s.IsAborted()) {
      Abort(txn);
    } else {
      AbortUser(txn);
    }
  }
  return s;
}

Engine::DeferredResult Engine::RunProcedureDeferred(
    uint32_t proc_id, int thread_id, const void* args, size_t arg_len,
    const std::vector<uint32_t>& partitions) {
  const Procedure* proc = GetProcedure(proc_id);
  NEXT700_CHECK_MSG(proc != nullptr, "unknown procedure");
  TxnContext* txn = Begin(thread_id, partitions);
  txn->set_defer_durable(true);
  txn->SetProcedure(proc_id, args, arg_len);
  Status s = (*proc)(this, txn, static_cast<const uint8_t*>(args), arg_len);
  if (s.ok()) s = Commit(txn);
  DeferredResult result;
  result.status = s;
  if (s.ok()) {
    // Durability matters only for sync-commit compositions; async commit
    // already promises nothing, so replies need not wait for the flusher.
    if (options_.sync_commit) result.commit_lsn = txn->commit_lsn();
    result.reply.assign(txn->reply_payload().begin(),
                        txn->reply_payload().end());
  } else {
    if (s.IsAborted()) {
      Abort(txn);
    } else {
      AbortUser(txn);
    }
  }
  return result;
}

RunStats Engine::AggregateStats() const {
  RunStats run;
  for (int i = 0; i < options_.max_threads; ++i) run.Add(stats_[i]);
  return run;
}

void Engine::ResetStats() {
  for (int i = 0; i < options_.max_threads; ++i) stats_[i].Reset();
}

Row* Engine::LoadRow(Table* table, uint32_t partition, uint64_t primary_key,
                     const void* data) {
  Row* row = table->AllocateRow(partition);
  row->primary_key = primary_key;
  if (cc_->is_multiversion()) {
    Version* v = Version::Allocate(table->schema().row_size());
    v->wts = kInvalidTimestamp;  // Older than every transaction.
    v->committed.store(true, std::memory_order_relaxed);
    std::memcpy(v->data(), data, table->schema().row_size());
    row->chain.store(v, std::memory_order_release);
  } else {
    std::memcpy(row->data(), data, table->schema().row_size());
  }
  return row;
}

const uint8_t* Engine::RawImage(const Row* row) const {
  if (cc_->is_multiversion()) {
    const Version* v = row->chain.load(std::memory_order_acquire);
    NEXT700_CHECK(v != nullptr);
    return v->data();
  }
  return row->data();
}

}  // namespace next700
