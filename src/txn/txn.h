#ifndef NEXT700_TXN_TXN_H_
#define NEXT700_TXN_TXN_H_

/// \file
/// Per-transaction execution state. One TxnContext per worker thread is
/// reused across transactions (Reset() between them); the read/write/undo
/// payloads live in a per-context arena so the steady state allocates
/// nothing.

#include <atomic>
#include <cstdint>
#include <vector>

#include "common/arena.h"
#include "common/stats.h"
#include "common/timestamp.h"
#include "storage/row.h"

namespace next700 {

class Index;

enum class TxnState {
  kIdle,
  kActive,
  kValidated,  // Passed pre-commit validation; awaiting log + finalize.
  kCommitted,
  kAborted,
};

/// One record read by the transaction, with whatever the scheme needs to
/// re-validate it at commit.
struct ReadSetEntry {
  Row* row = nullptr;
  uint64_t observed_tid = 0;   // Silo/TicToc: packed word at read time.
  Timestamp wts = 0;           // TicToc: version timestamp read.
  Timestamp rts = 0;           // TicToc: read validity end at read time.
  Version* version = nullptr;  // MVTO: the version actually read.
};

/// One record written (or inserted / deleted) by the transaction.
struct WriteSetEntry {
  Row* row = nullptr;
  uint8_t* new_data = nullptr;   // Arena copy of the full after-image.
  uint8_t* undo_data = nullptr;  // Before-image for in-place schemes.
  Version* version = nullptr;    // MVTO: version installed at execution.
  bool is_insert = false;
  bool is_delete = false;
  bool applied = false;  // In-place schemes: row already overwritten.
  bool latched = false;  // Row mini-latch/lock held between validate/finalize.
  bool skip_write = false;  // T/O Thomas write rule: commit without writing.
};

/// Deferred index maintenance, applied after commit.
struct IndexOp {
  Index* index = nullptr;
  uint64_t key = 0;
  Row* row = nullptr;
  bool is_insert = false;  // false => remove.
};

class TxnContext {
 public:
  explicit TxnContext(int thread_id) : thread_id_(thread_id) {}
  TxnContext(const TxnContext&) = delete;
  TxnContext& operator=(const TxnContext&) = delete;

  int thread_id() const { return thread_id_; }

  /// Globally unique id of the running transaction (lock-manager identity).
  uint64_t txn_id() const { return txn_id_; }
  void set_txn_id(uint64_t id) { txn_id_ = id; }

  Timestamp ts() const { return ts_; }
  void set_ts(Timestamp ts) { ts_ = ts; }

  Timestamp commit_ts() const { return commit_ts_; }
  void set_commit_ts(Timestamp ts) { commit_ts_ = ts; }

  TxnState state() const { return state_; }
  void set_state(TxnState state) { state_ = state; }

  Arena* arena() { return &arena_; }

  std::vector<ReadSetEntry>& read_set() { return read_set_; }
  std::vector<WriteSetEntry>& write_set() { return write_set_; }
  std::vector<IndexOp>& index_ops() { return index_ops_; }

  /// Home partitions declared at Begin (H-Store engine; sorted, unique).
  std::vector<uint32_t>& partitions() { return partitions_; }

  /// Rows on which the lock manager holds locks for this transaction.
  std::vector<Row*>& held_locks() { return held_locks_; }

  /// WOUND_WAIT: an older transaction marked this one for death. The victim
  /// notices at its next lock operation (or inside its wait loop) and
  /// aborts. Set by other threads; cleared by Reset().
  bool wounded() const { return wounded_.load(std::memory_order_acquire); }
  void set_wounded() { wounded_.store(true, std::memory_order_release); }

  /// Per-worker stats sink (owned by the engine).
  ThreadStats* stats() const { return stats_; }
  void set_stats(ThreadStats* stats) { stats_ = stats; }

  /// Write-set entry for `row`, or nullptr (read-own-writes lookup).
  WriteSetEntry* FindWrite(Row* row) {
    for (auto& entry : write_set_) {
      if (entry.row == row) return &entry;
    }
    return nullptr;
  }

  /// Log position the commit record must reach to be durable. 0 for
  /// read-only transactions or engines without logging. Set by the engine
  /// during Commit(); consumed by callers that defer durability (the
  /// network server holds the client reply until the flusher passes it).
  uint64_t commit_lsn() const { return commit_lsn_; }
  void set_commit_lsn(uint64_t lsn) { commit_lsn_ = lsn; }

  /// When set, Commit() appends the commit record but does not block on
  /// WaitDurable even under sync_commit; the caller takes responsibility
  /// for not exposing the commit until commit_lsn() is durable.
  bool defer_durable() const { return defer_durable_; }
  void set_defer_durable(bool defer) { defer_durable_ = defer; }

  /// Out-of-band result channel for stored procedures executed through the
  /// network server: whatever the procedure appends here is returned to the
  /// client in the response payload. Ignored by recovery replay.
  std::vector<uint8_t>& reply_payload() { return reply_payload_; }

  /// Registered stored-procedure invocation for command logging.
  uint32_t proc_id() const { return proc_id_; }
  const std::vector<uint8_t>& proc_args() const { return proc_args_; }
  void SetProcedure(uint32_t proc_id, const void* args, size_t len) {
    proc_id_ = proc_id;
    proc_args_.assign(static_cast<const uint8_t*>(args),
                      static_cast<const uint8_t*>(args) + len);
  }
  bool has_procedure() const { return proc_id_ != kNoProcedure; }

  static constexpr uint32_t kNoProcedure = ~0u;

  void Reset() {
    read_set_.clear();
    write_set_.clear();
    index_ops_.clear();
    partitions_.clear();
    held_locks_.clear();
    arena_.Reset();
    ts_ = kInvalidTimestamp;
    commit_ts_ = kInvalidTimestamp;
    proc_id_ = kNoProcedure;
    proc_args_.clear();
    reply_payload_.clear();
    commit_lsn_ = 0;
    defer_durable_ = false;
    wounded_.store(false, std::memory_order_relaxed);
    state_ = TxnState::kIdle;
  }

 private:
  int thread_id_;
  uint64_t txn_id_ = 0;
  Timestamp ts_ = kInvalidTimestamp;
  Timestamp commit_ts_ = kInvalidTimestamp;
  TxnState state_ = TxnState::kIdle;
  uint32_t proc_id_ = kNoProcedure;
  uint64_t commit_lsn_ = 0;
  bool defer_durable_ = false;
  std::vector<uint8_t> proc_args_;
  std::vector<uint8_t> reply_payload_;
  Arena arena_;
  std::vector<ReadSetEntry> read_set_;
  std::vector<WriteSetEntry> write_set_;
  std::vector<IndexOp> index_ops_;
  std::vector<uint32_t> partitions_;
  std::vector<Row*> held_locks_;
  std::atomic<bool> wounded_{false};
  ThreadStats* stats_ = nullptr;
};

}  // namespace next700

#endif  // NEXT700_TXN_TXN_H_
