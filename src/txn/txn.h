#ifndef NEXT700_TXN_TXN_H_
#define NEXT700_TXN_TXN_H_

/// \file
/// Per-transaction execution state. One TxnContext per worker thread is
/// reused across transactions (Reset() between them); the read/write/undo
/// payloads live in a per-context arena so the steady state allocates
/// nothing.

#include <atomic>
#include <cstdint>

#include "common/arena.h"
#include "common/small_vector.h"
#include "common/stats.h"
#include "common/timestamp.h"
#include "storage/row.h"

namespace next700 {

class Index;
class VersionPool;

enum class TxnState {
  kIdle,
  kActive,
  kValidated,  // Passed pre-commit validation; awaiting log + finalize.
  kCommitted,
  kAborted,
};

/// One record read by the transaction, with whatever the scheme needs to
/// re-validate it at commit.
struct ReadSetEntry {
  Row* row = nullptr;
  uint64_t observed_tid = 0;   // Silo/TicToc: packed word at read time.
  Timestamp wts = 0;           // TicToc: version timestamp read.
  Timestamp rts = 0;           // TicToc: read validity end at read time.
  Version* version = nullptr;  // MVTO: the version actually read.
};

/// One record written (or inserted / deleted) by the transaction.
struct WriteSetEntry {
  Row* row = nullptr;
  uint8_t* new_data = nullptr;   // Arena copy of the full after-image.
  uint8_t* undo_data = nullptr;  // Before-image for in-place schemes.
  Version* version = nullptr;    // MVTO: version installed at execution.
  bool is_insert = false;
  bool is_delete = false;
  bool applied = false;  // In-place schemes: row already overwritten.
  bool latched = false;  // Row mini-latch/lock held between validate/finalize.
  bool skip_write = false;  // T/O Thomas write rule: commit without writing.
};

/// Deferred index maintenance, applied after commit.
struct IndexOp {
  Index* index = nullptr;
  uint64_t key = 0;
  Row* row = nullptr;
  bool is_insert = false;  // false => remove.
};

class TxnContext {
 public:
  /// Access sets sized for typical OLTP transactions (YCSB: 16 ops, TPC-C
  /// NewOrder: ~15 writes): the inline capacity covers them with zero arena
  /// traffic; larger transactions spill into the per-context arena, still
  /// never reaching the global allocator.
  using ReadSet = SmallVector<ReadSetEntry, 16>;
  using WriteSet = SmallVector<WriteSetEntry, 16>;
  using IndexOps = SmallVector<IndexOp, 8>;
  using PartitionSet = SmallVector<uint32_t, 8>;
  using LockSet = SmallVector<Row*, 16>;
  using ByteBuffer = SmallVector<uint8_t, 64>;

  explicit TxnContext(int thread_id) : thread_id_(thread_id) {
    proc_args_.set_arena(&arena_);
    reply_payload_.set_arena(&arena_);
    log_staging_.set_arena(&arena_);
    read_set_.set_arena(&arena_);
    write_set_.set_arena(&arena_);
    index_ops_.set_arena(&arena_);
    partitions_.set_arena(&arena_);
    held_locks_.set_arena(&arena_);
  }
  TxnContext(const TxnContext&) = delete;
  TxnContext& operator=(const TxnContext&) = delete;

  int thread_id() const { return thread_id_; }

  /// Globally unique id of the running transaction (lock-manager identity).
  uint64_t txn_id() const { return txn_id_; }
  void set_txn_id(uint64_t id) { txn_id_ = id; }

  Timestamp ts() const { return ts_; }
  void set_ts(Timestamp ts) { ts_ = ts; }

  Timestamp commit_ts() const { return commit_ts_; }
  void set_commit_ts(Timestamp ts) { commit_ts_ = ts; }

  TxnState state() const { return state_; }
  void set_state(TxnState state) { state_ = state; }

  Arena* arena() { return &arena_; }

  /// Per-worker version recycler (multiversion schemes only; nullptr for
  /// single-version schemes and standalone contexts, which fall back to the
  /// heap). Owned by the engine.
  VersionPool* version_pool() const { return version_pool_; }
  void set_version_pool(VersionPool* pool) { version_pool_ = pool; }

  ReadSet& read_set() { return read_set_; }
  WriteSet& write_set() { return write_set_; }
  IndexOps& index_ops() { return index_ops_; }

  /// Home partitions declared at Begin (H-Store engine; sorted, unique).
  PartitionSet& partitions() { return partitions_; }

  /// Rows on which the lock manager holds locks for this transaction.
  LockSet& held_locks() { return held_locks_; }

  /// WOUND_WAIT: an older transaction marked this one for death. The victim
  /// notices at its next lock operation (or inside its wait loop) and
  /// aborts. Set by other threads; cleared by Reset().
  bool wounded() const { return wounded_.load(std::memory_order_acquire); }
  void set_wounded() { wounded_.store(true, std::memory_order_release); }

  /// Per-worker stats sink (owned by the engine).
  ThreadStats* stats() const { return stats_; }
  void set_stats(ThreadStats* stats) { stats_ = stats; }

  /// Write-set entry for `row`, or nullptr (read-own-writes lookup).
  WriteSetEntry* FindWrite(Row* row) {
    for (auto& entry : write_set_) {
      if (entry.row == row) return &entry;
    }
    return nullptr;
  }

  /// Log position the commit record must reach to be durable. 0 for
  /// read-only transactions or engines without logging. Set by the engine
  /// during Commit(); consumed by callers that defer durability (the
  /// network server holds the client reply until the flusher passes it).
  uint64_t commit_lsn() const { return commit_lsn_; }
  void set_commit_lsn(uint64_t lsn) { commit_lsn_ = lsn; }

  /// When set, Commit() appends the commit record but does not block on
  /// WaitDurable even under sync_commit; the caller takes responsibility
  /// for not exposing the commit until commit_lsn() is durable.
  bool defer_durable() const { return defer_durable_; }
  void set_defer_durable(bool defer) { defer_durable_ = defer; }

  /// Out-of-band result channel for stored procedures executed through the
  /// network server: whatever the procedure appends here is returned to the
  /// client in the response payload. Ignored by recovery replay.
  ByteBuffer& reply_payload() { return reply_payload_; }

  /// Scratch buffer the engine serializes this transaction's commit record
  /// into before handing it to the log manager (arena-backed, so logging
  /// stages without touching the heap).
  ByteBuffer& log_staging() { return log_staging_; }

  /// Registered stored-procedure invocation for command logging.
  uint32_t proc_id() const { return proc_id_; }
  const ByteBuffer& proc_args() const { return proc_args_; }
  void SetProcedure(uint32_t proc_id, const void* args, size_t len) {
    proc_id_ = proc_id;
    proc_args_.assign(static_cast<const uint8_t*>(args),
                      static_cast<const uint8_t*>(args) + len);
  }
  bool has_procedure() const { return proc_id_ != kNoProcedure; }

  static constexpr uint32_t kNoProcedure = ~0u;

  /// 2PC participant branch state. A nonzero gtid marks this transaction as
  /// one branch of a distributed transaction; `prepared` is set once
  /// Engine::Prepare() has made the kTxnPrepare record durable (the
  /// transaction then holds its locks/validated state until
  /// CommitPrepared/AbortPrepared delivers the coordinator's decision).
  uint64_t gtid() const { return gtid_; }
  void set_gtid(uint64_t gtid) { gtid_ = gtid; }
  bool prepared() const { return prepared_; }
  void set_prepared(bool prepared) { prepared_ = prepared; }
  uint64_t prepare_lsn() const { return prepare_lsn_; }
  void set_prepare_lsn(uint64_t lsn) { prepare_lsn_ = lsn; }

  void Reset() {
    // Spilled access sets live in arena_: drop every vector back to its
    // inline storage *before* rewinding the arena under them.
    read_set_.ResetToInline();
    write_set_.ResetToInline();
    index_ops_.ResetToInline();
    partitions_.ResetToInline();
    held_locks_.ResetToInline();
    proc_args_.ResetToInline();
    reply_payload_.ResetToInline();
    log_staging_.ResetToInline();
    arena_.Reset();
    ts_ = kInvalidTimestamp;
    commit_ts_ = kInvalidTimestamp;
    proc_id_ = kNoProcedure;
    commit_lsn_ = 0;
    defer_durable_ = false;
    gtid_ = 0;
    prepared_ = false;
    prepare_lsn_ = 0;
    wounded_.store(false, std::memory_order_relaxed);
    state_ = TxnState::kIdle;
  }

 private:
  int thread_id_;
  uint64_t txn_id_ = 0;
  Timestamp ts_ = kInvalidTimestamp;
  Timestamp commit_ts_ = kInvalidTimestamp;
  TxnState state_ = TxnState::kIdle;
  uint32_t proc_id_ = kNoProcedure;
  uint64_t commit_lsn_ = 0;
  bool defer_durable_ = false;
  uint64_t gtid_ = 0;
  bool prepared_ = false;
  uint64_t prepare_lsn_ = 0;
  Arena arena_;
  ByteBuffer proc_args_;
  ByteBuffer reply_payload_;
  ByteBuffer log_staging_;
  ReadSet read_set_;
  WriteSet write_set_;
  IndexOps index_ops_;
  PartitionSet partitions_;
  LockSet held_locks_;
  VersionPool* version_pool_ = nullptr;
  std::atomic<bool> wounded_{false};
  ThreadStats* stats_ = nullptr;
};

}  // namespace next700

#endif  // NEXT700_TXN_TXN_H_
