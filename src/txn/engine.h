#ifndef NEXT700_TXN_ENGINE_H_
#define NEXT700_TXN_ENGINE_H_

/// \file
/// The composable transaction processing engine. An Engine is assembled
/// from orthogonal components chosen in EngineOptions — concurrency
/// control, timestamp allocation, logging, partitioning — over the shared
/// storage and index substrates. Sweeping those axes enumerates the
/// keynote's "next 700 engines"; the design-space benchmark (T3) does
/// exactly that.
///
/// Threading model: the caller assigns each worker a thread id in
/// [0, max_threads); Begin() hands out that worker's reusable TxnContext.
/// All data operations take the TxnContext and return Status; kAborted
/// means the transaction lost a conflict and the caller must Abort() and
/// (typically) retry.

#include <functional>
#include <map>
#include <memory>
#include <string>
#include <vector>

#include "cc/cc.h"
#include "cc/mvto.h"
#include "common/epoch.h"
#include "common/status.h"
#include "common/stats.h"
#include "common/thread_safety.h"
#include "common/timestamp.h"
#include "index/index.h"
#include "log/log_manager.h"
#include "storage/catalog.h"
#include "storage/version_pool.h"
#include "txn/txn.h"

namespace next700 {

class CheckpointCoordinator;
struct CheckpointStats;

struct EngineOptions {
  CcScheme cc_scheme = CcScheme::kOcc;
  int max_threads = 8;
  /// Default partition count for new tables and the H-Store lock domain.
  uint32_t num_partitions = 1;
  TimestampAllocatorKind ts_allocator = TimestampAllocatorKind::kAtomic;
  /// MVTO: incremental version-chain garbage collection.
  bool mvcc_gc = true;

  LoggingKind logging = LoggingKind::kNone;
  /// Directory holding the log.NNNNNN segment files (created on demand;
  /// surviving segments are kept and the LSN space resumes after them).
  std::string log_dir;
  /// Wait for the commit record to reach the device before returning.
  bool sync_commit = true;
  /// Durability barrier per group-commit flush. kNone makes sync_commit
  /// wait only for the write() — fast, but a kernel crash can lose it.
  LogSyncPolicy log_sync = LogSyncPolicy::kNone;
  uint64_t log_flush_interval_us = 50;
  uint64_t log_device_latency_us = 0;
  /// Rotate to a new segment once the live one exceeds this (0 = never).
  uint64_t log_segment_bytes = 64ull << 20;
  /// Overrides the log's device backend (fault injection, EINTR shims).
  LogFileFactory log_file_factory;
  /// Submission backend for the log device (see LogManagerOptions): kAuto
  /// and kUring use a private ring for linked write+barrier submission,
  /// kEpoll keeps the synchronous write+fdatasync path. A custom
  /// log_file_factory always wins over the ring.
  io::IoBackendKind log_io_backend = io::IoBackendKind::kAuto;

  /// Online checkpointing: directory for MANIFEST + checkpoint files.
  /// Non-empty constructs a CheckpointCoordinator — the engine reads the
  /// MANIFEST's log base at startup so the LSN space resumes correctly
  /// over a truncated log — and enables the transaction gate the snapshot
  /// scans quiesce through. Start the background thread with
  /// StartCheckpointer() *after* DDL and loading.
  std::string checkpoint_dir;
  /// Background checkpoint cadence; 0 = manual TriggerCheckpoint() only.
  uint64_t checkpoint_interval_ms = 0;
  /// Retire log segments wholly below each checkpoint's start LSN.
  bool checkpoint_truncates_log = true;
  /// Crash-harness hook for the install sequence (see CheckpointerOptions).
  std::function<void(const char*)> checkpoint_crash_hook;
};

/// A stored procedure: re-executable transaction logic for command logging
/// and recovery. Must be deterministic given its arguments.
using Procedure =
    std::function<Status(class Engine*, TxnContext*, const uint8_t* args,
                         size_t arg_len)>;

class Engine {
 public:
  explicit Engine(EngineOptions options);
  ~Engine();
  Engine(const Engine&) = delete;
  Engine& operator=(const Engine&) = delete;

  const EngineOptions& options() const { return options_; }
  Catalog* catalog() { return &catalog_; }
  ConcurrencyControl* cc() { return cc_.get(); }
  LogManager* log_manager() { return log_.get(); }
  TimestampAllocator* ts_allocator() { return ts_allocator_.get(); }

  // --- DDL (single-threaded setup) --------------------------------------

  /// Creates a table partitioned options().num_partitions ways.
  Table* CreateTable(std::string name, Schema schema);
  Index* CreateIndex(std::string name, Table* table, IndexKind kind,
                     uint64_t capacity_hint);

  /// Registers deterministic transaction logic under `proc_id` (command
  /// logging + recovery). `read_only` marks procedures that never write —
  /// a read-only replica serves exactly those against its applied
  /// snapshot and rejects everything else.
  void RegisterProcedure(uint32_t proc_id, Procedure procedure,
                         bool read_only = false);
  const Procedure* GetProcedure(uint32_t proc_id) const;
  /// True iff `proc_id` is registered and was declared read-only.
  bool IsProcedureReadOnly(uint32_t proc_id) const;

  // --- Transactions ------------------------------------------------------

  /// Starts a transaction on the calling worker. For the H-Store scheme,
  /// `partitions` must list every partition the transaction will touch
  /// (empty = all partitions).
  TxnContext* Begin(int thread_id,
                    const std::vector<uint32_t>& partitions = {});

  /// Point read through `index`. kNotFound if no visible row has `key`.
  Status Read(TxnContext* txn, Index* index, uint64_t key, uint8_t* out);

  /// Read via a row handle obtained from an index scan.
  Status ReadRow(TxnContext* txn, Row* row, uint8_t* out);

  /// Read with declared write intent (SELECT ... FOR UPDATE): use when an
  /// Update of the same row follows in this transaction.
  Status ReadForUpdate(TxnContext* txn, Index* index, uint64_t key,
                       uint8_t* out);
  Status ReadRowForUpdate(TxnContext* txn, Row* row, uint8_t* out);

  /// Full-row update through `index`.
  Status Update(TxnContext* txn, Index* index, uint64_t key,
                const void* data);
  Status UpdateRow(TxnContext* txn, Row* row, const void* data);

  /// Allocates and stages a new row; visible (and indexed) after commit.
  /// The caller must AddIndexInsert() at least the table's primary index.
  Result<Row*> Insert(TxnContext* txn, Table* table, uint32_t partition,
                      uint64_t primary_key, const void* data);

  /// Stages a deletion; index entries must be removed via AddIndexRemove.
  Status Delete(TxnContext* txn, Row* row);

  /// Defers an index mutation to commit time.
  void AddIndexInsert(TxnContext* txn, Index* index, uint64_t key, Row* row);
  void AddIndexRemove(TxnContext* txn, Index* index, uint64_t key, Row* row);

  /// Range scan over an ordered index; returns row handles (read each with
  /// ReadRow for transactional visibility).
  Status Scan(TxnContext* txn, Index* index, uint64_t lo, uint64_t hi,
              size_t limit, std::vector<Row*>* out);
  Status ScanReverse(TxnContext* txn, Index* index, uint64_t hi, uint64_t lo,
                     size_t limit, std::vector<Row*>* out);

  /// Validates, hardens, and publishes the transaction. On kAborted the
  /// caller must still call Abort(). Under sync_commit the commit record's
  /// durability failure surfaces here as a non-Aborted error: the effects
  /// are published in memory but must not be acknowledged; Abort() on such
  /// a transaction is a safe no-op.
  Status Commit(TxnContext* txn);

  /// Rolls back a concurrency-control abort; always succeeds.
  void Abort(TxnContext* txn);

  /// Rolls back an application-initiated abort (counted separately: these
  /// are deterministic outcomes, not conflicts to retry).
  void AbortUser(TxnContext* txn);

  /// Runs a registered procedure as one transaction, retrying internal
  /// aborts is the caller's job. Records (proc_id, args) for command
  /// logging before execution.
  Status RunProcedure(uint32_t proc_id, int thread_id, const void* args,
                      size_t arg_len,
                      const std::vector<uint32_t>& partitions = {});

  /// Result of RunProcedureDeferred. When `status` is OK and `commit_lsn`
  /// is nonzero the commit record has been appended but may not be durable
  /// yet: the caller must not expose the commit (e.g. reply to a client)
  /// until the log's durable LSN passes `commit_lsn`. commit_lsn == 0 means
  /// nothing awaits durability (read-only, logging off, or failure).
  /// `reply` is whatever the procedure wrote to TxnContext::reply_payload().
  struct DeferredResult {
    Status status;
    Lsn commit_lsn = 0;
    std::vector<uint8_t> reply;
  };

  /// RunProcedure variant for the network server's group-commit-aware reply
  /// path: never blocks in WaitDurable even under sync_commit; instead the
  /// commit LSN is returned so the caller can release the result when the
  /// flusher acknowledges it (LogManager::SetDurableCallback).
  DeferredResult RunProcedureDeferred(
      uint32_t proc_id, int thread_id, const void* args, size_t arg_len,
      const std::vector<uint32_t>& partitions = {});

  // --- Two-phase commit (participant side) -------------------------------
  //
  // A shard executes its branch of a distributed transaction through the
  // normal procedure path, then splits Commit() at the validation/publish
  // seam: Prepare() validates and hardens a redo record, the branch parks
  // holding its locks, and the coordinator's decision drives
  // CommitPrepared()/AbortPrepared(). Invariant: the kTxnPrepare record is
  // durable before Prepare() returns ("prepare durable before vote") — the
  // durability wait therefore happens *inside* the transaction gate, so
  // 2PC and online checkpointing are mutually exclusive (see DESIGN.md).

  /// Phase one on this shard's branch of distributed transaction `gtid`:
  /// validates, appends a kTxnPrepare record carrying a value-format redo
  /// image (always value format, even under command logging, so in-doubt
  /// resolution never re-executes), and waits for it to be durable. On OK
  /// the transaction stays validated with locks held until the decision
  /// arrives; kAborted means validation lost and the caller must Abort()
  /// and vote no. A read-only branch logs nothing (prepare_lsn stays 0).
  Status Prepare(TxnContext* txn, uint64_t gtid);

  /// Phase two, commit: appends kTxnOutcome(commit), publishes the writes,
  /// and releases locks. The outcome LSN lands in txn->commit_lsn(); under
  /// defer_durable the caller must hold its ack until that LSN is durable,
  /// otherwise this waits like Commit().
  Status CommitPrepared(TxnContext* txn);

  /// Phase two, abort: appends kTxnOutcome(abort) and rolls the branch
  /// back. No durability wait — presumed abort makes a lost abort record
  /// harmless (recovery leaves the gtid in doubt and the coordinator
  /// re-answers abort).
  void AbortPrepared(TxnContext* txn);

  // --- In-doubt transactions recovered from the log ----------------------

  /// Hands the engine the in-doubt set recovery surfaced (gtid -> stashed
  /// kTxnValue redo body) plus the secondary-index rebuilder resolution
  /// uses when applying a redo re-creates rows.
  void SetInDoubt(std::map<uint64_t, std::vector<uint8_t>> in_doubt,
                  std::function<void(Engine*, Row*)> rebuilder);
  bool has_in_doubt() const;
  std::vector<uint64_t> InDoubtGtids() const;

  /// Resolves one recovered in-doubt transaction with the coordinator's
  /// decision: appends kTxnOutcome and, on commit, waits for durability and
  /// applies the stashed redo. kNotFound for a gtid not in doubt (callers
  /// treat that as an idempotent redelivery). The serving layer must fence
  /// out normal transactions until the in-doubt set is empty — redo bodies
  /// are applied outside any concurrency control.
  Status ResolveInDoubt(uint64_t gtid, bool commit);

  // --- Introspection -----------------------------------------------------

  ThreadStats* stats(int thread_id) { return &stats_[thread_id]; }
  RunStats AggregateStats() const;
  void ResetStats();

  /// Loader convenience: single-threaded, CC-free row installation used to
  /// populate tables before a run (also used by recovery replay).
  Row* LoadRow(Table* table, uint32_t partition, uint64_t primary_key,
               const void* data);

  /// Latest committed image of `row`, bypassing concurrency control. Only
  /// safe when no transactions are in flight (loaders, audits, recovery).
  const uint8_t* RawImage(const Row* row) const;

  /// Replay mode: suppresses commit-record appends (and therefore the
  /// durability wait) while RecoveryManager re-executes command-logged
  /// procedures on an engine whose own log is open — a replica applying
  /// the primary's stream, or checkpoint+suffix recovery into a serving
  /// engine. Without this, every replayed command transaction would be
  /// logged *again*, duplicating history and, on a replica, corrupting the
  /// byte-identical copy of the primary's stream that AppendRaw maintains.
  /// Toggled by RecoveryManager around replay; read-only transactions are
  /// unaffected either way (empty write sets never log).
  void set_replay_mode(bool on) {
    replay_mode_.store(on, std::memory_order_relaxed);
  }

  /// Per-worker version recycler (multiversion schemes; see VersionPool).
  VersionPool* version_pool(int thread_id) {
    return thread_id < static_cast<int>(pools_.size())
               ? pools_[thread_id].get()
               : nullptr;
  }
  EpochManager* epoch_manager() { return epochs_.get(); }

  // --- Checkpointing ------------------------------------------------------

  /// The coordinator built for checkpoint_dir, or null.
  CheckpointCoordinator* checkpointer() { return checkpointer_.get(); }

  /// Spawns the background checkpointer (checkpoint_interval_ms > 0). Call
  /// after DDL and loading: the snapshot scan must not race CreateTable or
  /// CC-free LoadRow writes.
  void StartCheckpointer();

  /// Takes one checkpoint now (snapshot, atomic install, MANIFEST update,
  /// log truncation). Safe concurrently with transactions.
  Status TriggerCheckpoint(CheckpointStats* stats);

 private:
  friend class RecoveryManager;
  friend class CheckpointCoordinator;

  /// Transaction ids are carved from the shared counter in blocks, like
  /// batched timestamps: uniqueness is all the lock manager needs, and any
  /// total order keeps wait-die / wound-wait deadlock-free.
  static constexpr uint64_t kTxnIdBatch = 64;
  /// Commits/aborts between epoch advances on each worker.
  static constexpr uint32_t kEpochMaintainInterval = 64;

  /// One line per worker: transaction-id reservation, epoch cadence, and
  /// the worker's side of the checkpoint transaction gate. Cache-aligned
  /// so Begin() on one worker never invalidates another's.
  struct NEXT700_CACHE_ALIGNED WorkerState {
    uint64_t next_txn_id = 0;
    uint64_t txn_id_end = 0;
    uint32_t txns_since_maintain = 0;
    /// Dekker-style flag: 1 while a transaction is between Begin() and its
    /// Commit/Abort gate exit. Paired with gate_closed_ via seq_cst so the
    /// checkpointer's drain and a worker's entry cannot both proceed.
    std::atomic<uint8_t> in_txn{0};
  };

  Status AppendCommitRecord(TxnContext* txn);
  void ApplyIndexOps(TxnContext* txn);
  /// The replay-ordering timestamp AppendCommitRecord / Prepare stamp on
  /// redo records (0 for lock-based schemes: log order is commit order).
  Timestamp ReplayCommitTimestamp(const TxnContext* txn) const;
  /// Serializes the transaction's after-images in kTxnValue body format
  /// into `body` (appended; caller clears).
  void StageValueBody(TxnContext* txn, Timestamp commit_ts,
                      TxnContext::ByteBuffer* body);

  // --- Checkpoint transaction gate ---------------------------------------
  // Workers pass through the gate per transaction; the checkpointer closes
  // it to drain every in-flight transaction (full quiesce or a brief
  // start-LSN / per-partition window). Compiled to nothing unless a
  // checkpoint_dir is configured. Invariant making the drain deadlock-free:
  // a thread between EnterTxnGate and ExitTxnGate never waits on the gate,
  // and the durability wait (which can outlast a flush) happens after the
  // exit — it touches no row data.
  void EnterTxnGate(int thread_id);
  void ExitTxnGate(int thread_id);
  void PauseTransactions();
  void ResumeTransactions();

  /// Unpins the worker's epoch after commit/abort and periodically advances
  /// the global epoch so retired versions recycle.
  void FinishEpoch(TxnContext* txn) {
    if (epochs_ == nullptr) return;
    const int thread_id = txn->thread_id();
    epochs_->Exit(thread_id);
    WorkerState& worker = workers_[thread_id];
    if (++worker.txns_since_maintain >= kEpochMaintainInterval) {
      worker.txns_since_maintain = 0;
      epochs_->Maintain(thread_id);
    }
  }

  EngineOptions options_;
  // Declared before catalog_ and contexts_: table teardown releases version
  // chains into the pools, so the pools (and the epoch manager they retire
  // through) must be constructed first / destroyed last. ~Engine drains the
  // epoch manager before any member goes away.
  std::unique_ptr<EpochManager> epochs_;
  std::vector<std::unique_ptr<VersionPool>> pools_;
  std::unique_ptr<WorkerState[]> workers_;
  Catalog catalog_;
  std::unique_ptr<TimestampAllocator> ts_allocator_;
  std::unique_ptr<ActiveTxnTracker> tracker_;
  std::unique_ptr<ConcurrencyControl> cc_;
  std::unique_ptr<LogManager> log_;
  std::vector<std::unique_ptr<TxnContext>> contexts_;
  std::unique_ptr<ThreadStats[]> stats_;
  struct ProcedureEntry {
    uint32_t proc_id;
    Procedure procedure;
    bool read_only;
  };
  std::vector<ProcedureEntry> procedures_;
  std::atomic<uint64_t> next_txn_id_{1};
  std::atomic<bool> replay_mode_{false};

  // Prepared-but-undecided transactions surfaced by recovery. Resolution is
  // serialized under the mutex (redo bodies apply outside any CC; prepared
  // write sets are disjoint because every branch held its locks, but index
  // maintenance and the empty() fast path still need ordering).
  mutable Mutex in_doubt_mu_;
  std::map<uint64_t, std::vector<uint8_t>> in_doubt_
      GUARDED_BY(in_doubt_mu_);
  std::function<void(Engine*, Row*)> in_doubt_rebuilder_
      GUARDED_BY(in_doubt_mu_);

  // Declared after log_: the coordinator's destructor (via ~Engine's
  // explicit Stop) must run while the log is still open.
  std::unique_ptr<CheckpointCoordinator> checkpointer_;
  bool txn_gate_enabled_ = false;  // Set once at construction; then read-only.
  // seq_cst Dekker flag paired with WorkerState::in_txn; gate_mu_ only
  // sequences the sleep/wake protocol around it (no guarded plain fields).
  std::atomic<bool> gate_closed_{false};
  Mutex gate_mu_;
  CondVar gate_cv_;
};

}  // namespace next700

#endif  // NEXT700_TXN_ENGINE_H_
