#ifndef NEXT700_FAULTLOG_FAULT_INJECTION_H_
#define NEXT700_FAULTLOG_FAULT_INJECTION_H_

/// \file
/// Crash-fault injection for the log/recovery path. A FaultInjector holds
/// a (typically seeded) schedule of faults keyed by the global physical
/// write index — the count of LogFile::Append calls across every segment
/// the log manager opens — and hands out FaultInjectingLogFile backends
/// through LogManager's file factory. At the scheduled write it can:
///
///   * kCrashBeforeWrite — _exit the process before the write lands
///     (models a crash between group commits: the whole batch is lost);
///   * kTornWrite        — write only a prefix of the batch, then _exit
///     (models power loss mid-sector-stream: a torn tail);
///   * kBitFlip          — flip one bit inside the batch and keep running
///     (models media corruption of an already-acknowledged frame; a later
///     crash fault usually follows so the damage sits mid-log).
///
/// _exit(2) is deliberate: no destructors, no flushes — the surviving
/// bytes are exactly what the kernel already had, like a real crash. (A
/// process kill cannot un-write page-cache data, so what this harness
/// proves is crash consistency of the *format and replay*, plus that the
/// barriers are really issued — counted in syncs() — not device-level
/// power-loss atomicity.)
///
/// The injector also counts writes and barriers and exposes an observer
/// invoked after every completed write; tools/crashtest streams those
/// events to the parent process so it knows, post-mortem, how far the
/// child's log got.

#include <atomic>
#include <cstdint>
#include <functional>
#include <vector>

#include "log/log_file.h"

namespace next700 {

struct FaultPoint {
  enum class Kind {
    kCrashBeforeWrite,
    kTornWrite,
    kBitFlip,
  };
  Kind kind = Kind::kCrashBeforeWrite;
  /// Global physical-write index (0-based) this fault triggers at.
  uint64_t write_index = 0;
  /// kTornWrite: how many bytes of the batch land before the crash; taken
  /// modulo the batch length, so any seed value is valid.
  uint64_t tear_bytes = 0;
  /// kBitFlip: byte offset inside the batch (modulo its length) and mask.
  uint64_t flip_offset = 0;
  uint8_t flip_mask = 0x01;
};

/// Shared state across segment files (the factory creates a new LogFile per
/// segment, but write indices and the schedule are log-global). Thread-safe
/// for the single-flusher use the LogManager makes of it; counters may be
/// read from any thread.
class FaultInjector {
 public:
  /// Observer invoked after each *completed* (non-faulted) write with its
  /// index. Runs on the flusher thread; must be async-signal-ish cheap.
  using WriteObserver = std::function<void(uint64_t write_index)>;

  void AddFault(const FaultPoint& point) { faults_.push_back(point); }
  void set_write_observer(WriteObserver observer) {
    observer_ = std::move(observer);
  }
  void set_exit_code(int code) { exit_code_ = code; }

  /// LogManagerOptions::file_factory adapter. The injector must outlive
  /// every file the factory creates (and the LogManager using it).
  LogFileFactory factory();

  /// Completed physical writes across all segments.
  uint64_t writes() const {
    return write_count_.load(std::memory_order_relaxed);
  }
  /// Durability barriers issued (fdatasync calls / O_DSYNC writes).
  uint64_t syncs() const { return sync_count_.load(std::memory_order_relaxed); }

 private:
  friend class FaultInjectingLogFile;

  std::vector<FaultPoint> faults_;
  WriteObserver observer_;
  int exit_code_ = 42;
  std::atomic<uint64_t> write_count_{0};
  std::atomic<uint64_t> sync_count_{0};
};

/// PosixLogFile that consults a FaultInjector before every write. Real I/O
/// goes through the base class (including its EINTR/short-write handling);
/// faults bypass it on purpose, issuing raw partial writes + _exit.
class FaultInjectingLogFile : public PosixLogFile {
 public:
  explicit FaultInjectingLogFile(FaultInjector* injector)
      : injector_(injector) {}

  Status Append(const uint8_t* data, size_t len) override;
  Status Sync() override;

 private:
  FaultInjector* injector_;
};

}  // namespace next700

#endif  // NEXT700_FAULTLOG_FAULT_INJECTION_H_
