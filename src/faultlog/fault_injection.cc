#include "faultlog/fault_injection.h"

#include <errno.h>
#include <unistd.h>

#include <cstring>
#include <vector>

namespace next700 {

namespace {

/// Best-effort raw write of exactly `len` bytes, used for the torn prefix.
/// EINTR is retried; anything else just stops — we are about to _exit
/// anyway, and a shorter-than-scheduled tear is still a valid tear.
void RawWriteAll(int fd, const uint8_t* data, size_t len) {
  size_t off = 0;
  while (off < len) {
    const ssize_t n = ::write(fd, data + off, len - off);
    if (n < 0) {
      if (errno == EINTR) continue;
      return;
    }
    off += static_cast<size_t>(n);
  }
}

}  // namespace

LogFileFactory FaultInjector::factory() {
  return [this] { return std::make_unique<FaultInjectingLogFile>(this); };
}

Status FaultInjectingLogFile::Append(const uint8_t* data, size_t len) {
  const uint64_t index =
      injector_->write_count_.load(std::memory_order_relaxed);
  const uint8_t* payload = data;
  std::vector<uint8_t> corrupted;
  for (const FaultPoint& fault : injector_->faults_) {
    if (fault.write_index != index) continue;
    switch (fault.kind) {
      case FaultPoint::Kind::kCrashBeforeWrite:
        ::_exit(injector_->exit_code_);
      case FaultPoint::Kind::kTornWrite:
        if (len > 0) {
          RawWriteAll(fd(), data, static_cast<size_t>(fault.tear_bytes % len));
        }
        ::_exit(injector_->exit_code_);
      case FaultPoint::Kind::kBitFlip:
        if (len > 0) {
          corrupted.assign(data, data + len);
          corrupted[static_cast<size_t>(fault.flip_offset % len)] ^=
              fault.flip_mask;
          payload = corrupted.data();
        }
        break;  // Corrupted bytes are written normally; execution goes on.
    }
  }
  NEXT700_RETURN_IF_ERROR(PosixLogFile::Append(payload, len));
  if (o_dsync()) {
    injector_->sync_count_.fetch_add(1, std::memory_order_relaxed);
  }
  injector_->write_count_.fetch_add(1, std::memory_order_relaxed);
  if (injector_->observer_) injector_->observer_(index);
  return Status::OK();
}

Status FaultInjectingLogFile::Sync() {
  NEXT700_RETURN_IF_ERROR(PosixLogFile::Sync());
  injector_->sync_count_.fetch_add(1, std::memory_order_relaxed);
  return Status::OK();
}

}  // namespace next700
