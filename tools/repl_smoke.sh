#!/usr/bin/env bash
# Loopback replication smoke test: start a semisync primary and a replica,
# drive increments at the primary, kill -9 the primary, promote the replica
# (restart its directories as a primary with --recover), and prove every
# acked transaction is present after failover via the full-keyspace counter
# audit (each acked rmw adds exactly --rmw-keys increments, so the audit's
# increment sum must cover ok * rmw_keys). Used by CI.
#
# usage: repl_smoke.sh <build-dir> [io-backend]
#   io-backend: auto (default) | uring | epoll — passed to every serve
#   invocation so the CI io-backend matrix covers replication end to end.
set -euo pipefail

BUILD_DIR="${1:?usage: repl_smoke.sh <build-dir> [io-backend]}"
IO_BACKEND="${2:-auto}"

RUN="$BUILD_DIR/tools/next700_run"
LOADGEN="$BUILD_DIR/tools/next700_loadgen"
PLOG="$(mktemp -d /tmp/next700_repl.XXXXXX.plogd)"
RLOG="$(mktemp -d /tmp/next700_repl.XXXXXX.rlogd)"
POUT="$(mktemp /tmp/next700_repl.XXXXXX.pout)"
ROUT="$(mktemp /tmp/next700_repl.XXXXXX.rout)"
MOUT="$(mktemp /tmp/next700_repl.XXXXXX.mout)"
RECORDS=2000

cleanup() {
  for pid in "${PRIMARY_PID:-}" "${REPLICA_PID:-}" "${PROMOTED_PID:-}"; do
    [[ -n "$pid" ]] && kill "$pid" 2>/dev/null || true
    [[ -n "$pid" ]] && wait "$pid" 2>/dev/null || true
  done
  rm -rf "$PLOG" "$RLOG" "$POUT" "$ROUT" "$MOUT"
}
trap cleanup EXIT

# Waits for "listening on HOST:PORT" in $2 from pid $1; echoes the port.
wait_port() {
  local pid="$1" out="$2" port=""
  for _ in $(seq 1 150); do
    port="$(sed -n 's/^listening on [^:]*:\([0-9]*\).*$/\1/p' "$out" | head -n1)"
    [[ -n "$port" ]] && { echo "$port"; return 0; }
    kill -0 "$pid" 2>/dev/null || { cat "$out" >&2; echo "server died" >&2; return 1; }
    sleep 0.1
  done
  cat "$out" >&2; echo "server never started listening" >&2; return 1
}

"$RUN" serve --port=0 --workers=2 --records="$RECORDS" \
  --logging=value --log-sync=fdatasync --log-dir="$PLOG" \
  --repl-ack=semisync --io-backend="$IO_BACKEND" > "$POUT" &
PRIMARY_PID=$!
PPORT="$(wait_port "$PRIMARY_PID" "$POUT")"

"$RUN" serve --port=0 --workers=2 --records="$RECORDS" \
  --logging=value --log-sync=fdatasync --log-dir="$RLOG" \
  --role=replica --primary-addr="127.0.0.1:$PPORT" \
  --io-backend="$IO_BACKEND" > "$ROUT" &
REPLICA_PID=$!
RPORT="$(wait_port "$REPLICA_PID" "$ROUT")"

# Pure rmw load: every acked txn adds exactly 2 counter increments.
LOAD_OUT="$("$LOADGEN" --port="$PPORT" --connections=2 --pipeline=8 \
  --seconds=2 --records="$RECORDS" --get=0.0 --put=0.0 --rmw-keys=2 --check)"
echo "$LOAD_OUT"
ACKED_OK="$(echo "$LOAD_OUT" | sed -n 's/^ok: *\([0-9]*\)$/\1/p')"
[[ -n "$ACKED_OK" && "$ACKED_OK" -gt 0 ]] || { echo "no acked txns"; exit 1; }
ACKED_INCREMENTS=$((ACKED_OK * 2))

# Snapshot reads on the replica work while both sides are up.
"$LOADGEN" --port="$RPORT" --records="$RECORDS" --audit

# Fail the primary hard — no orderly shutdown, no final flush.
kill -9 "$PRIMARY_PID"
wait "$PRIMARY_PID" 2>/dev/null || true
PRIMARY_PID=""

# Stop the replica and promote its directories into a writable primary:
# restarting with --role=primary --recover runs ordinary crash recovery
# over the replica's own log copy.
kill -INT "$REPLICA_PID"
wait "$REPLICA_PID"
REPLICA_PID=""
cat "$ROUT"

"$RUN" serve --port=0 --workers=2 --records="$RECORDS" \
  --logging=value --log-sync=fdatasync --log-dir="$RLOG" \
  --recover --io-backend="$IO_BACKEND" > "$MOUT" &
PROMOTED_PID=$!
MPORT="$(wait_port "$PROMOTED_PID" "$MOUT")"

# Every semisync-acked increment must have survived the failover.
AUDIT_OUT="$("$LOADGEN" --port="$MPORT" --records="$RECORDS" --audit)"
echo "$AUDIT_OUT"
SURVIVED="$(echo "$AUDIT_OUT" | sed -n 's/.*increments=\([0-9]*\).*/\1/p')"
[[ -n "$SURVIVED" ]] || { echo "audit produced no increment count"; exit 1; }
if [[ "$SURVIVED" -lt "$ACKED_INCREMENTS" ]]; then
  echo "FAIL: acked work lost in failover:" \
       "acked=$ACKED_INCREMENTS survived=$SURVIVED"
  exit 1
fi
echo "failover audit OK: acked=$ACKED_INCREMENTS survived=$SURVIVED"

# The promoted node is a real primary: it accepts new writes.
"$LOADGEN" --port="$MPORT" --connections=1 --pipeline=4 --seconds=1 \
  --records="$RECORDS" --get=0.0 --put=0.0 --rmw-keys=1 --check

kill -INT "$PROMOTED_PID"
wait "$PROMOTED_PID"
PROMOTED_PID=""
cat "$MOUT"
echo "repl smoke OK"
