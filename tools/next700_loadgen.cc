/// next700_loadgen — multi-threaded load generator for a running
/// `next700_run serve` instance. One pipelined connection per thread,
/// driving the KV stored-procedure suite with a configurable get/put/rmw
/// mix over Zipf-skewed keys; prints throughput, outcome counts, and
/// client-observed latency percentiles.
///
/// The key-space flags (--records, --partitions, --value-size) must match
/// the server's composition; --declare-partitions is required when the
/// server runs an H-Store composition.
///
/// Examples:
///   next700_loadgen --port=7700 --connections=8 --pipeline=16 --seconds=10
///   next700_loadgen --port=7700 --partitions=4 --declare-partitions
///       --get=0.0 --put=0.0 --rmw-keys=1

#include <cstdio>
#include <cstdlib>
#include <string>

#include "server/loadgen.h"
#include "flags.h"

namespace next700 {
namespace {

void Usage() {
  std::fprintf(
      stderr,
      "usage: next700_loadgen --port=P [--host=ADDR] [--connections=N]\n"
      "  [--pipeline=N] [--threads=N] [--seconds=S] [--warmup=S] "
      "[--records=N]\n"
      "  [--partitions=N] [--value-size=B] [--declare-partitions] "
      "[--get=F]\n"
      "  [--put=F] [--rmw-keys=N] [--theta=T] [--seed=N] "
      "[--deadline-ms=N]\n"
      "  [--check] [--audit] [--min-read-lsn=N] [--num-shards=N]\n"
      "  [--multi-shard=F]\n"
      "\n"
      "Op mix: get + put fractions; the remainder is read-modify-write.\n"
      "--num-shards > 1 (driving a shard router) makes rmw key sets\n"
      "shard-aware; --multi-shard is the fraction of rmws that span two\n"
      "shards (cross-shard 2PC transactions).\n"
      "--threads=0 (default) runs one blocking thread per connection;\n"
      "--threads=N multiplexes the connections over N poll() threads —\n"
      "required to drive hundreds or thousands of connections.\n"
      "--check exits nonzero unless the run had OK commits and no "
      "transport errors.\n"
      "--audit scans every key instead of generating load and prints a\n"
      "machine-readable 'AUDIT ...' line (counter deltas prove how many\n"
      "acked increments the store retains); --min-read-lsn demands a\n"
      "replica snapshot at least that fresh.\n");
}

}  // namespace
}  // namespace next700

int main(int argc, char** argv) {
  using namespace next700;
  tools::Flags flags(argc, argv, Usage);

  server::LoadGenOptions options;
  options.host = flags.GetString("host", "127.0.0.1");
  const int64_t port = flags.GetInt("port", 0);
  if (port <= 0 || port > 65535) flags.Die("--port is required (1..65535)");
  options.port = static_cast<uint16_t>(port);
  options.connections = static_cast<int>(flags.GetInt("connections", 4));
  if (options.connections < 1) flags.Die("--connections must be >= 1");
  options.pipeline_depth = static_cast<int>(flags.GetInt("pipeline", 8));
  if (options.pipeline_depth < 1) flags.Die("--pipeline must be >= 1");
  options.threads = static_cast<int>(flags.GetInt("threads", 0));
  if (options.threads < 0) flags.Die("--threads must be >= 0");
  options.warmup_seconds = flags.GetDouble("warmup", 0.0);
  options.seconds = flags.GetDouble("seconds", 5.0);
  if (options.seconds <= 0) flags.Die("--seconds must be > 0");
  options.num_records =
      static_cast<uint64_t>(flags.GetInt("records", 100000));
  options.num_partitions =
      static_cast<uint32_t>(flags.GetInt("partitions", 1));
  if (options.num_partitions == 0) flags.Die("--partitions must be >= 1");
  options.value_size =
      static_cast<uint32_t>(flags.GetInt("value-size", 64));
  options.declare_partitions = flags.GetBool("declare-partitions", false);
  options.get_fraction = flags.GetDouble("get", 0.5);
  options.put_fraction = flags.GetDouble("put", 0.0);
  if (options.get_fraction < 0 || options.put_fraction < 0 ||
      options.get_fraction + options.put_fraction > 1.0) {
    flags.Die("--get/--put must be nonnegative and sum to <= 1.0");
  }
  options.rmw_keys = static_cast<uint16_t>(flags.GetInt("rmw-keys", 4));
  options.theta = flags.GetDouble("theta", 0.0);
  options.seed = static_cast<uint64_t>(flags.GetInt("seed", 42));
  options.deadline_ms = flags.GetInt("deadline-ms", 10000);
  options.num_shards = static_cast<uint32_t>(flags.GetInt("num-shards", 1));
  if (options.num_shards == 0) flags.Die("--num-shards must be >= 1");
  options.multi_shard_fraction = flags.GetDouble("multi-shard", 0.0);
  if (options.multi_shard_fraction < 0 || options.multi_shard_fraction > 1) {
    flags.Die("--multi-shard must be in [0, 1]");
  }
  const bool check = flags.GetBool("check", false);
  const bool audit = flags.GetBool("audit", false);
  const uint64_t min_read_lsn =
      static_cast<uint64_t>(flags.GetInt("min-read-lsn", 0));
  flags.RejectUnknown();

  if (audit) {
    server::KvAuditResult result;
    const Status status =
        server::RunKvAudit(options, min_read_lsn, &result);
    if (!status.ok()) {
      std::fprintf(stderr, "AUDIT FAIL transport: %s\n",
                   status.ToString().c_str());
      return 2;
    }
    std::printf("AUDIT keys=%llu missing=%llu errors=%llu "
                "increments=%llu snapshot_lsn=%llu\n",
                static_cast<unsigned long long>(result.keys_checked),
                static_cast<unsigned long long>(result.missing),
                static_cast<unsigned long long>(result.errors),
                static_cast<unsigned long long>(result.increment_sum),
                static_cast<unsigned long long>(result.snapshot_lsn));
    return result.errors == 0 ? 0 : 1;
  }

  std::printf("driving %s:%u: %d conns x depth %d, %.1fs "
              "(get=%.2f put=%.2f rmw=%.2f theta=%.2f)\n",
              options.host.c_str(), options.port, options.connections,
              options.pipeline_depth, options.seconds, options.get_fraction,
              options.put_fraction,
              1.0 - options.get_fraction - options.put_fraction,
              options.theta);
  std::fflush(stdout);

  const server::LoadGenStats stats = server::RunLoadGen(options);

  std::printf("\nthroughput: %.0f txn/s\n", stats.Throughput());
  std::printf("ok:         %llu\n",
              static_cast<unsigned long long>(stats.ok));
  std::printf("aborted:    %llu\n",
              static_cast<unsigned long long>(stats.aborted));
  std::printf("rejected:   %llu (admission)\n",
              static_cast<unsigned long long>(stats.resource_exhausted));
  std::printf("errors:     %llu other, %llu transport\n",
              static_cast<unsigned long long>(stats.other_errors),
              static_cast<unsigned long long>(stats.transport_errors));
  std::printf("latency:    %s\n", stats.latency_ns.Summary().c_str());

  if (check && (stats.ok == 0 || stats.transport_errors != 0)) {
    std::fprintf(stderr, "check failed: ok=%llu transport_errors=%llu\n",
                 static_cast<unsigned long long>(stats.ok),
                 static_cast<unsigned long long>(stats.transport_errors));
    return 1;
  }
  return 0;
}
