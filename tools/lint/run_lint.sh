#!/usr/bin/env bash
# Repo-invariant lint — checks the concurrency/resource rules that Clang's
# thread safety analysis cannot express. Pure shell + grep + awk; no
# compiler needed, so it runs identically on every CI job and locally.
#
# Usage: run_lint.sh [ROOT]
#   ROOT defaults to the repository root (two levels above this script).
#   Scans $ROOT/src. Exit 0 = clean, 1 = violations (one line each, in
#   "lint[rule]: file:line: message" form).
#
# Rules
#   nodiscard-status        src/common/status.h must mark Status and
#                           Result<T> [[nodiscard]].
#   raw-mutex               no std::mutex / std::condition_variable /
#                           lock_guard / unique_lock outside
#                           common/thread_safety.h — use the annotated
#                           Mutex / CondVar / MutexLock wrappers.
#   naked-new               no naked new / operator new / malloc in the
#                           transaction hot-path layers (src/storage,
#                           src/cc). Placement new is the arena idiom and
#                           is allowed; setup-time allocations carry an
#                           explicit "lint: allow-naked-new" comment.
#   blocking-under-latch    no blocking syscall (fsync/fdatasync/write/
#                           pwrite/sleep) while a latch guard
#                           (SpinLatchGuard / MutexLock / RowLatchGuard)
#                           is in scope.
#   rename-without-fsync    in src/log, rename(2) must be preceded by an
#                           fsync of the file being installed (tmp+fsync+
#                           rename+dirsync discipline).

set -u

ROOT="${1:-$(cd "$(dirname "$0")/../.." && pwd)}"
SRC="$ROOT/src"

if [ ! -d "$SRC" ]; then
  echo "lint: no src/ under $ROOT" >&2
  exit 2
fi

OUT="$(mktemp)"
trap 'rm -f "$OUT"' EXIT

# --- nodiscard-status ------------------------------------------------------
STATUS_H="$SRC/common/status.h"
if [ -f "$STATUS_H" ]; then
  grep -q 'class \[\[nodiscard\]\] Status' "$STATUS_H" ||
    echo "lint[nodiscard-status]: $STATUS_H:1: Status must be declared 'class [[nodiscard]] Status'" >>"$OUT"
  grep -q 'class \[\[nodiscard\]\] Result' "$STATUS_H" ||
    echo "lint[nodiscard-status]: $STATUS_H:1: Result<T> must be declared 'class [[nodiscard]] Result'" >>"$OUT"
fi

# --- raw-mutex -------------------------------------------------------------
grep -rn \
    -e 'std::mutex' -e 'std::condition_variable' -e 'std::lock_guard' \
    -e 'std::unique_lock' -e 'std::scoped_lock' -e 'std::shared_mutex' \
    --include='*.h' --include='*.cc' "$SRC" 2>/dev/null |
  grep -v 'common/thread_safety\.h' |
  grep -v ':[0-9]*:[[:space:]]*//' |
  sed 's/^\([^:]*:[0-9]*\):.*/lint[raw-mutex]: \1: use the annotated Mutex\/CondVar\/MutexLock wrappers from common\/thread_safety.h/' \
  >>"$OUT"

# --- naked-new -------------------------------------------------------------
for dir in "$SRC/storage" "$SRC/cc"; do
  [ -d "$dir" ] || continue
  find "$dir" \( -name '*.cc' -o -name '*.h' \) | sort | while IFS= read -r f; do
    awk -v file="$f" '
      {
        prev_allow = allow
        allow = (index($0, "lint: allow-naked-new") > 0)
        line = $0
        sub(/\/\/.*/, "", line)             # strip line comments
        if (line ~ /^[[:space:]]*\*/) next  # block-comment body
        bad = 0
        if (line ~ /operator[[:space:]]+new/) bad = 1
        else if (line ~ /[^_[:alnum:]](malloc|calloc|realloc)[[:space:]]*\(/) bad = 1
        else if (line ~ /(^|[^_[:alnum:]])new[[:space:]]+[[:alnum:]_:<]/ &&
                 line !~ /(^|[^_[:alnum:]])new[[:space:]]*\(/) bad = 1
        if (bad && !allow && !prev_allow) {
          printf "lint[naked-new]: %s:%d: naked allocation in a hot-path layer; use an arena/pool or annotate with a lint allowance\n", file, NR
        }
      }
    ' "$f"
  done
done >>"$OUT"

# --- blocking-under-latch --------------------------------------------------
find "$SRC" \( -name '*.cc' -o -name '*.h' \) | sort | while IFS= read -r f; do
  awk -v file="$f" '
    BEGIN { depth = 0; nguards = 0 }
    {
      prev_allow = allow
      allow = (index($0, "lint: allow-blocking-under-latch") > 0)
      line = $0
      sub(/\/\/.*/, "", line)
      if (line ~ /^[[:space:]]*\*/) next
      opens = gsub(/{/, "", line) + 0
      closes = gsub(/}/, "", line) + 0
      # A guard declared on this line is active until its scope closes.
      if (line ~ /(SpinLatchGuard|MutexLock|RowLatchGuard)[[:space:]]+[A-Za-z_][A-Za-z0-9_]*[[:space:]]*\(/) {
        nguards++
        guard_depth[nguards] = depth + opens
      }
      if (nguards > 0 && !allow && !prev_allow &&
          (line ~ /[^_[:alnum:]](fsync|fdatasync|usleep|nanosleep)[[:space:]]*\(/ ||
           line ~ /::(write|pwrite|read|pread|open|rename|unlink)[[:space:]]*\(/ ||
           line ~ /sleep_for[[:space:]]*\(/)) {
        printf "lint[blocking-under-latch]: %s:%d: blocking syscall while a latch guard is in scope; move the IO outside the critical section\n", file, NR
      }
      depth += opens - closes
      while (nguards > 0 && guard_depth[nguards] > depth) nguards--
    }
  ' "$f"
done >>"$OUT"

# --- rename-without-fsync --------------------------------------------------
if [ -d "$SRC/log" ]; then
  find "$SRC/log" -name '*.cc' | sort | while IFS= read -r f; do
    awk -v file="$f" '
      BEGIN { last_sync = 0 }
      {
        prev_allow = allow
        allow = (index($0, "lint: allow-rename") > 0)
        line = $0
        sub(/\/\/.*/, "", line)
        if (line ~ /[^_[:alnum:]](fsync|fdatasync)[[:space:]]*\(/ ||
            line ~ /(->|\.)Sync[[:space:]]*\(/) last_sync = NR
        if (line ~ /[^_[:alnum:]]rename[[:space:]]*\(/ && !allow && !prev_allow) {
          if (last_sync == 0 || NR - last_sync > 30)
            printf "lint[rename-without-fsync]: %s:%d: rename(2) without a preceding fsync of the installed file (tmp+fsync+rename+dirsync)\n", file, NR
        }
      }
    ' "$f"
  done >>"$OUT"
fi

if [ -s "$OUT" ]; then
  cat "$OUT"
  echo "lint: $(wc -l <"$OUT") violation(s)" >&2
  exit 1
fi
exit 0
