#!/usr/bin/env bash
# Loopback smoke test for the transaction service: start `next700_run serve`
# on an ephemeral port, drive it with next700_loadgen, and assert the run
# committed work with no transport errors (loadgen --check). Used by CI.
#
# usage: server_smoke.sh <build-dir> [extra serve flags...]
set -euo pipefail

BUILD_DIR="${1:?usage: server_smoke.sh <build-dir> [serve flags...]}"
shift || true

RUN="$BUILD_DIR/tools/next700_run"
LOADGEN="$BUILD_DIR/tools/next700_loadgen"
LOG="$(mktemp -d /tmp/next700_smoke.XXXXXX.logd)"
OUT="$(mktemp /tmp/next700_smoke.XXXXXX.out)"

cleanup() {
  [[ -n "${SERVER_PID:-}" ]] && kill "$SERVER_PID" 2>/dev/null || true
  [[ -n "${SERVER_PID:-}" ]] && wait "$SERVER_PID" 2>/dev/null || true
  rm -rf "$LOG" "$OUT"
}
trap cleanup EXIT

"$RUN" serve --port=0 --workers=2 --records=20000 \
  --logging=value --log-sync=fdatasync --log-dir="$LOG" "$@" > "$OUT" &
SERVER_PID=$!

# Wait for the "listening on HOST:PORT" line (the port is ephemeral).
PORT=""
for _ in $(seq 1 100); do
  PORT="$(sed -n 's/^listening on [^:]*:\([0-9]*\).*$/\1/p' "$OUT" | head -n1)"
  [[ -n "$PORT" ]] && break
  kill -0 "$SERVER_PID" 2>/dev/null || { cat "$OUT"; echo "server died"; exit 1; }
  sleep 0.1
done
[[ -n "$PORT" ]] || { cat "$OUT"; echo "server never started listening"; exit 1; }

"$LOADGEN" --port="$PORT" --connections=4 --pipeline=8 --seconds=2 \
  --records=20000 --get=0.5 --put=0.25 --rmw-keys=2 --check

kill -INT "$SERVER_PID"
wait "$SERVER_PID"
SERVER_PID=""
cat "$OUT"
echo "server smoke OK"
