/// \file
/// Crash-fault injection driver for the log/recovery path.
///
/// Each round forks a child that runs a two-worker update workload against
/// an engine with sync_commit + fdatasync and a FaultInjectingLogFile
/// backend. Driven by the round's seed, the backend kills the child at a
/// chosen physical write, tears that write at a byte offset, or flips a bit
/// in a flushed batch. The child reports two event streams over a pipe:
/// 'A' records after each *acknowledged* transaction (RunProcedure returned
/// OK, i.e. WaitDurable passed) and 'W' records for each completed physical
/// write. The parent then recovers the log into a fresh engine and checks
/// the durability contract:
///
///   * every acknowledged transaction survives replay;
///   * recovered state is exactly the deterministic model prefix per
///     worker — no unacknowledged transaction is half-applied;
///   * a bit flip below the log tail is *detected* (kCorruption), never
///     silently replayed past — unless checkpoint-driven truncation retired
///     the damaged segment, in which case recovery must be clean and the
///     full model check must still pass.
///
/// Checkpoint lifecycle faults: a quarter of the rounds run with online
/// checkpointing (worker 0 triggers a checkpoint every few acked
/// transactions, some rounds also run the background checkpointer) and
/// crash at a named point inside the install sequence — mid checkpoint
/// write, before its rename, mid MANIFEST write, before its rename, before
/// or between segment unlinks, before old-file cleanup. Half of the
/// log-fault rounds also checkpoint, so log crashes land on truncated
/// logs. Recovery then goes through the MANIFEST (RecoverEngine) and the
/// same acked-survival + model-prefix contract is asserted.
///
/// Workload: worker t repeatedly runs procedure 1 on disjoint keys — its
/// cursor row (key = t) plus two data rows drawn from its private range.
/// Every row carries (count, stamp); the cursor count after seq s is s+1,
/// so replay reveals exactly how many of the worker's transactions
/// survived, and full-state comparison against the recomputed model
/// catches any partial application. Arguments are derived from the seed,
/// so the parent can rebuild the schedule without trusting the child.
///
/// Replication rounds (`crashtest repl [rounds] [base_seed]`): each round
/// forks a real semisync primary server and a replica (engine + applier)
/// as separate processes, drives pipelined increments over TCP from the
/// parent, and kill -9s one side at a seed-chosen point:
///
///   * kill-primary: every semisync-acked transaction must survive
///     promotion — replaying the replica's own log into a fresh engine
///     must show at least the acked increments per key (and no more than
///     acked + in-flight-at-kill);
///   * kill-replica: the primary must keep acking commits (semisync
///     degrades to local durability) and lose nothing; the dead replica's
///     torn log must reopen cleanly (tail truncation only);
///   * both: the replica's log must be a byte prefix of the primary's —
///     the applied stream never runs ahead of what the primary wrote.
///
/// Sharded 2PC rounds (`crashtest shard [rounds] [base_seed]`): each round
/// forks two shard servers and a shard router (coordinator) as separate
/// processes and drives a pipelined mix of single-shard and deliberately
/// cross-shard kv_rmw transactions through the router. The seed picks one
/// of three crash points:
///
///   * coordinator crash: the router _exit(42)s right after the Nth
///     cross-shard transaction's prepares hit the wire, before its commit
///     decision is logged — both participants are left with parked
///     prepared branches (in doubt);
///   * participant crash: one shard _exit(42)s after its Nth prepare is
///     durable but before the vote leaves, so the coordinator aborts the
///     transaction while the dead shard holds an in-doubt prepare record;
///   * router SIGKILL: the parent kill -9s the router mid-pipeline at an
///     arbitrary point (decisions may be durable with replies unsent).
///
/// Every process is then restarted over the same directories (shards with
/// full-replay recovery, the router over the same decision log); the
/// reconnecting router replays commit decisions from its log scan and
/// presumes abort for the rest, which must clear every in-doubt branch.
/// The parent audits per-key counters through the router and asserts:
///
///   * every acked increment survived, and no key gained more than
///     acked + in-flight-at-kill increments;
///   * atomicity: cross-shard transactions touch a dedicated pair region
///     (keys {2j, 2j+1}, always on different shards), so the two counters
///     of a pair must always be equal — a prepared branch that committed
///     on one shard and aborted on the other would split them;
///   * liveness: after recovery one single-shard and one cross-shard
///     transaction must commit (the in-doubt gate cleared).
///
/// Usage: crashtest [repl] [rounds] [base_seed]
///        crashtest shard [rounds] [base_seed] [io-backend]
///
/// `io-backend` (auto|uring|epoll, default auto) selects the router's
/// event-loop backend; shard servers keep their own default.

#include <sys/types.h>
#include <sys/wait.h>
#include <unistd.h>

#include <algorithm>
#include <atomic>
#include <cerrno>
#include <chrono>
#include <csignal>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <deque>
#include <fstream>
#include <functional>
#include <map>
#include <memory>
#include <string>
#include <thread>
#include <utility>
#include <vector>

#include "common/rng.h"
#include "faultlog/fault_injection.h"
#include "log/checkpoint.h"
#include "log/log_file.h"
#include "log/log_manager.h"
#include "io/io_backend.h"
#include "log/recovery.h"
#include "repl/replica_applier.h"
#include "server/client.h"
#include "server/procs.h"
#include "server/server.h"
#include "shard/shard_router.h"
#include "txn/engine.h"

namespace next700 {
namespace {

constexpr int kThreads = 2;
constexpr uint64_t kTxnsPerThread = 200;
constexpr uint64_t kKeysPerThread = 64;
constexpr uint64_t kDataBase = 16;  // Data keys start here; cursors at 0..1.

/// Fixed-size pipe record; well under PIPE_BUF, so concurrent writers
/// (two workers acking, the flusher reporting writes) stay atomic.
struct Event {
  char tag;  // 'A' = acked txn {a=thread, b=seq}; 'W' = write {a=index}.
  char pad[7];
  uint64_t a;
  uint64_t b;
};

void SendEvent(int fd, char tag, uint64_t a, uint64_t b) {
  Event ev;
  std::memset(&ev, 0, sizeof(ev));
  ev.tag = tag;
  ev.a = a;
  ev.b = b;
  for (;;) {
    const ssize_t n = ::write(fd, &ev, sizeof(ev));
    if (n == static_cast<ssize_t>(sizeof(ev))) return;
    if (n < 0 && errno == EINTR) continue;
    ::_exit(99);  // Pipe broken: the parent is gone, nothing to salvage.
  }
}

/// One transaction's deterministic argument block.
struct TxnArgs {
  uint64_t thread;
  uint64_t seq;
  uint64_t key_a;
  uint64_t key_b;
};

/// Rebuilds worker t's argument schedule from the round seed. Child and
/// parent call this independently; the child never has to report what it
/// intended to run.
std::vector<TxnArgs> MakeSchedule(uint64_t seed, uint64_t thread) {
  Rng rng(seed * 0x9E3779B97F4A7C15ull + thread + 1);
  const uint64_t base = kDataBase + thread * kKeysPerThread;
  std::vector<TxnArgs> schedule;
  schedule.reserve(kTxnsPerThread);
  for (uint64_t seq = 0; seq < kTxnsPerThread; ++seq) {
    const uint64_t a = rng.NextUint64(kKeysPerThread);
    // Distinct second key so each transaction touches exactly three rows.
    const uint64_t b = (a + 1 + rng.NextUint64(kKeysPerThread - 1)) %
                       kKeysPerThread;
    schedule.push_back({thread, seq, base + a, base + b});
  }
  return schedule;
}

/// Every named point the checkpoint install sequence passes through, in
/// order. Checkpoint-crash rounds pick one and _exit there.
constexpr const char* kCkptCrashPoints[] = {
    "checkpoint:mid-write",       "checkpoint:before-rename",
    "checkpoint:before-manifest", "manifest:mid-write",
    "manifest:before-rename",     "checkpoint:before-retire",
    "checkpoint:mid-retire",      "checkpoint:before-cleanup",
};
constexpr int kNumCkptCrashPoints =
    static_cast<int>(sizeof(kCkptCrashPoints) / sizeof(kCkptCrashPoints[0]));

/// Per-round fault plan, derived from the seed by parent and child alike.
struct FaultPlan {
  bool log_fault;       // False on checkpoint-crash rounds.
  FaultPoint::Kind kind;
  uint64_t write_index;
  uint64_t tear_bytes;
  uint64_t flip_offset;
  LoggingKind logging;
  bool checkpointing;
  bool ckpt_background;      // Also run the interval checkpointer thread.
  int ckpt_crash_point;      // Index into kCkptCrashPoints, or -1.
  uint64_t ckpt_crash_hits;  // Crash at the Nth occurrence of that point.
  uint64_t ckpt_every;       // Worker 0 checkpoints every N acked txns.
};

FaultPlan MakePlan(uint64_t seed) {
  Rng rng(seed ^ 0xA5A5A5A5DEADBEEFull);
  FaultPlan plan;
  const uint64_t kind_sel = seed % 4;
  plan.log_fault = kind_sel != 3;
  switch (kind_sel) {
    case 0:
      plan.kind = FaultPoint::Kind::kCrashBeforeWrite;
      break;
    case 1:
      plan.kind = FaultPoint::Kind::kTornWrite;
      break;
    default:
      plan.kind = FaultPoint::Kind::kBitFlip;
      break;
  }
  plan.write_index = 1 + rng.NextUint64(200);
  plan.tear_bytes = rng.Next();
  plan.flip_offset = rng.Next();
  plan.logging = (seed / 4) % 2 == 0 ? LoggingKind::kValue
                                     : LoggingKind::kCommand;
  // Checkpoint-crash rounds always checkpoint; so do half the log-fault
  // rounds, putting log crashes on truncated logs.
  plan.checkpointing = !plan.log_fault || (seed / 8) % 2 == 0;
  plan.ckpt_background = plan.checkpointing && (seed / 16) % 2 == 0;
  plan.ckpt_crash_point =
      plan.log_fault ? -1
                     : static_cast<int>(rng.NextUint64(kNumCkptCrashPoints));
  plan.ckpt_crash_hits = 1 + rng.NextUint64(3);
  plan.ckpt_every = 20 + rng.NextUint64(40);
  return plan;
}

/// Registers the crashtest schema + procedure on a fresh engine.
/// Procedure 1 bumps count and stamps seq+1 on the worker's cursor row and
/// both data rows, creating rows on first touch.
struct Fixture {
  Table* table = nullptr;
  Index* index = nullptr;
};

std::unique_ptr<Engine> MakeEngine(EngineOptions options, Fixture* fx) {
  auto engine = std::make_unique<Engine>(std::move(options));
  Schema schema;
  schema.AddUint64("count");
  schema.AddUint64("stamp");
  fx->table = engine->CreateTable("ct", std::move(schema));
  fx->index = engine->CreateIndex("ct_pk", fx->table, IndexKind::kHash, 4096);
  engine->RegisterProcedure(
      1, [fx](Engine* e, TxnContext* txn, const uint8_t* args,
              size_t len) -> Status {
        NEXT700_CHECK(len == sizeof(TxnArgs));
        TxnArgs in;
        std::memcpy(&in, args, sizeof(in));
        const uint64_t keys[3] = {in.thread, in.key_a, in.key_b};
        for (uint64_t key : keys) {
          uint8_t buf[16];
          Status s = e->ReadForUpdate(txn, fx->index, key, buf);
          if (s.IsNotFound()) {
            fx->table->schema().SetUint64(buf, 0, 1);
            fx->table->schema().SetUint64(buf, 1, in.seq + 1);
            Result<Row*> row = e->Insert(txn, fx->table, 0, key, buf);
            NEXT700_RETURN_IF_ERROR(row.status());
            e->AddIndexInsert(txn, fx->index, key, row.value());
            continue;
          }
          NEXT700_RETURN_IF_ERROR(s);
          fx->table->schema().SetUint64(
              buf, 0, fx->table->schema().GetUint64(buf, 0) + 1);
          fx->table->schema().SetUint64(buf, 1, in.seq + 1);
          NEXT700_RETURN_IF_ERROR(e->Update(txn, fx->index, key, buf));
        }
        return Status::OK();
      });
  return engine;
}

/// Child process body: run the workload under injection. Exits 42 when the
/// scheduled fault fires, 0 when the run completes without reaching it.
void RunChild(uint64_t seed, const std::string& log_dir, int event_fd) {
  const FaultPlan plan = MakePlan(seed);
  FaultInjector injector;
  if (plan.log_fault) {
    FaultPoint fault;
    fault.kind = plan.kind;
    fault.write_index = plan.write_index;
    fault.tear_bytes = plan.tear_bytes;
    fault.flip_offset = plan.flip_offset;
    injector.AddFault(fault);
    if (plan.kind == FaultPoint::Kind::kBitFlip) {
      // Let a few more batches land after the flip so the damage sits below
      // the log tail, then crash: recovery must *detect* it, not skip it.
      FaultPoint crash;
      crash.kind = FaultPoint::Kind::kCrashBeforeWrite;
      crash.write_index = plan.write_index + 3;
      injector.AddFault(crash);
    }
  }
  injector.set_write_observer(
      [event_fd](uint64_t index) { SendEvent(event_fd, 'W', index, 0); });

  EngineOptions options;
  options.cc_scheme = CcScheme::kNoWait;
  options.max_threads = kThreads;
  options.logging = plan.logging;
  options.log_dir = log_dir;
  options.sync_commit = true;
  options.log_sync = LogSyncPolicy::kFdatasync;
  options.log_flush_interval_us = 20;
  options.log_segment_bytes = 4096;  // Small: force rotation mid-run.
  options.log_file_factory = injector.factory();
  std::atomic<uint64_t> point_hits{0};
  if (plan.checkpointing) {
    options.checkpoint_dir = log_dir + ".ckpt";
    if (plan.ckpt_background) options.checkpoint_interval_ms = 5;
    const char* target = plan.ckpt_crash_point >= 0
                             ? kCkptCrashPoints[plan.ckpt_crash_point]
                             : nullptr;
    options.checkpoint_crash_hook = [&point_hits, &plan,
                                     target](const char* point) {
      if (target != nullptr && std::strcmp(point, target) == 0 &&
          point_hits.fetch_add(1) + 1 == plan.ckpt_crash_hits) {
        ::_exit(42);
      }
    };
  }
  Fixture fx;
  {
    auto engine = MakeEngine(options, &fx);
    if (plan.checkpointing && plan.ckpt_background) {
      engine->StartCheckpointer();
    }
    std::vector<std::thread> workers;
    for (int t = 0; t < kThreads; ++t) {
      workers.emplace_back([&, t] {
        const std::vector<TxnArgs> schedule = MakeSchedule(seed, t);
        for (const TxnArgs& args : schedule) {
          // Disjoint key ranges: no conflicts, so only a durability failure
          // can surface here — and under injection the process just dies.
          const Status s =
              engine->RunProcedure(1, t, &args, sizeof(args));
          NEXT700_CHECK_MSG(s.ok(), "workload txn failed");
          SendEvent(event_fd, 'A', args.thread, args.seq);
          if (plan.checkpointing && t == 0 &&
              (args.seq + 1) % plan.ckpt_every == 0) {
            // Online: worker 1 keeps committing while this runs.
            NEXT700_CHECK_MSG(engine->TriggerCheckpoint(nullptr).ok(),
                              "checkpoint failed");
          }
        }
      });
    }
    for (std::thread& w : workers) w.join();
  }  // Engine destruction closes the log.
  // Clean finish: the fault never triggered. Durability must have been
  // real — the injector saw the fdatasync barriers.
  NEXT700_CHECK_MSG(injector.syncs() > 0, "no durability barriers issued");
  ::_exit(0);
}

struct RoundResult {
  bool ok = false;
  std::string detail;
};

RoundResult Fail(std::string detail) { return {false, std::move(detail)}; }

/// Parent-side verification after the child exited.
RoundResult VerifyRound(uint64_t seed, const std::string& log_dir,
                        const std::vector<uint64_t>& acked,
                        uint64_t max_write_index, bool child_crashed) {
  const FaultPlan plan = MakePlan(seed);

  EngineOptions clean;
  clean.cc_scheme = CcScheme::kNoWait;
  clean.max_threads = kThreads;
  clean.logging = LoggingKind::kNone;
  Fixture fx;
  auto engine = MakeEngine(clean, &fx);
  Status replay;
  std::string how = "replayed";
  if (plan.checkpointing) {
    // Recover the way a real restart would: MANIFEST-named checkpoint
    // (if one was installed before the crash) + log suffix.
    RecoverOutcome outcome;
    replay = RecoverEngine(engine.get(), log_dir + ".ckpt", log_dir,
                           /*rebuilder=*/nullptr, &outcome);
    how = outcome.used_checkpoint ? "checkpoint+suffix" : "full replay";
  } else {
    RecoveryManager recovery(engine.get());
    RecoveryStats stats;
    replay = recovery.Replay(log_dir, &stats);
  }

  const bool flip_round = child_crashed && plan.log_fault &&
                          plan.kind == FaultPoint::Kind::kBitFlip;
  if (flip_round && max_write_index > plan.write_index) {
    // Writes landed after the flipped batch, so the damaged frame sits
    // mid-log: replay must refuse it rather than lose acked transactions.
    // With checkpointing the damaged segment may instead have been retired
    // below the checkpoint — then recovery is clean and the full model
    // check below must pass.
    if (replay.code() == StatusCode::kCorruption) {
      return {true, "corruption detected"};
    }
    if (!plan.checkpointing || !replay.ok()) {
      return Fail("bit flip below the tail not detected: " +
                  replay.ToString());
    }
  } else if (flip_round) {
    // The flipped batch was the last one written; its frames are
    // indistinguishable from a torn tail. Either outcome is legal, but
    // acked-transaction accounting is off the table.
    if (!replay.ok() && replay.code() != StatusCode::kCorruption) {
      return Fail("unexpected replay status: " + replay.ToString());
    }
    return {true, "flip at tail (lenient)"};
  }
  if (!replay.ok()) {
    return Fail("recovery failed: " + replay.ToString());
  }

  // Reconstruct the surviving prefix length per worker from its cursor row,
  // then compare the whole database against the recomputed model.
  std::map<uint64_t, std::pair<uint64_t, uint64_t>> model;  // key -> row.
  for (int t = 0; t < kThreads; ++t) {
    uint64_t applied = 0;
    if (Row* cursor = fx.index->Lookup(t)) {
      applied = fx.table->schema().GetUint64(engine->RawImage(cursor), 0);
      const uint64_t stamp =
          fx.table->schema().GetUint64(engine->RawImage(cursor), 1);
      if (stamp != applied) {
        return Fail("worker " + std::to_string(t) +
                    " cursor stamp/count mismatch");
      }
    }
    if (applied > kTxnsPerThread) {
      return Fail("worker " + std::to_string(t) + " over-applied");
    }
    if (applied < acked[t]) {
      return Fail("worker " + std::to_string(t) + " lost acked txns: " +
                  std::to_string(applied) + " survived < " +
                  std::to_string(acked[t]) + " acked");
    }
    if (!child_crashed && applied != kTxnsPerThread) {
      return Fail("clean run lost transactions");
    }
    const std::vector<TxnArgs> schedule = MakeSchedule(seed, t);
    for (uint64_t seq = 0; seq < applied; ++seq) {
      const TxnArgs& args = schedule[seq];
      for (uint64_t key : {args.thread, args.key_a, args.key_b}) {
        auto& row = model[key];
        row.first += 1;
        row.second = seq + 1;
      }
    }
  }
  for (uint64_t key = 0; key < kDataBase + kThreads * kKeysPerThread; ++key) {
    Row* row = fx.index->Lookup(key);
    const auto it = model.find(key);
    if (it == model.end()) {
      if (row != nullptr) {
        return Fail("key " + std::to_string(key) +
                    " exists but no surviving txn wrote it");
      }
      continue;
    }
    if (row == nullptr) {
      return Fail("key " + std::to_string(key) + " missing after replay");
    }
    const uint8_t* image = engine->RawImage(row);
    const uint64_t count = fx.table->schema().GetUint64(image, 0);
    const uint64_t stamp = fx.table->schema().GetUint64(image, 1);
    if (count != it->second.first || stamp != it->second.second) {
      return Fail("key " + std::to_string(key) + " diverges from model: (" +
                  std::to_string(count) + "," + std::to_string(stamp) +
                  ") != (" + std::to_string(it->second.first) + "," +
                  std::to_string(it->second.second) + ")");
    }
  }
  return {true, (child_crashed ? std::string("state matches model prefix")
                               : std::string("clean run complete")) +
                    ", " + how};
}

int RunRound(uint64_t seed, const std::string& log_dir) {
  int pipe_fds[2];
  if (::pipe(pipe_fds) != 0) {
    std::fprintf(stderr, "pipe failed\n");
    return 1;
  }
  const pid_t pid = ::fork();
  if (pid < 0) {
    std::fprintf(stderr, "fork failed\n");
    return 1;
  }
  if (pid == 0) {
    ::close(pipe_fds[0]);
    RunChild(seed, log_dir, pipe_fds[1]);
    ::_exit(0);  // Unreachable; RunChild always _exits.
  }
  ::close(pipe_fds[1]);

  std::vector<uint64_t> acked(kThreads, 0);
  uint64_t max_write_index = 0;
  bool saw_write = false;
  Event ev;
  size_t have = 0;
  auto* raw = reinterpret_cast<uint8_t*>(&ev);
  for (;;) {
    const ssize_t n =
        ::read(pipe_fds[0], raw + have, sizeof(ev) - have);
    if (n < 0 && errno == EINTR) continue;
    if (n <= 0) break;  // EOF: child exited (possibly mid-record).
    have += static_cast<size_t>(n);
    if (have < sizeof(ev)) continue;
    have = 0;
    if (ev.tag == 'A') {
      // Acks per worker arrive in seq order; count is enough.
      if (ev.a < kThreads) acked[ev.a] = ev.b + 1;
    } else if (ev.tag == 'W') {
      max_write_index = std::max(max_write_index, ev.a);
      saw_write = true;
    }
  }
  ::close(pipe_fds[0]);

  int wstatus = 0;
  if (::waitpid(pid, &wstatus, 0) != pid) {
    std::fprintf(stderr, "waitpid failed\n");
    return 1;
  }
  if (!WIFEXITED(wstatus)) {
    std::fprintf(stderr, "seed %llu: child did not exit normally\n",
                 static_cast<unsigned long long>(seed));
    return 1;
  }
  const int code = WEXITSTATUS(wstatus);
  if (code != 0 && code != 42) {
    std::fprintf(stderr, "seed %llu: child exited %d\n",
                 static_cast<unsigned long long>(seed), code);
    return 1;
  }

  const RoundResult result =
      VerifyRound(seed, log_dir, acked, saw_write ? max_write_index : 0,
                  /*child_crashed=*/code == 42);
  if (!result.ok) {
    std::fprintf(stderr, "seed %llu: FAIL: %s\n",
                 static_cast<unsigned long long>(seed),
                 result.detail.c_str());
    return 1;
  }
  std::printf("seed %llu: %s (%s, acked %llu+%llu)\n",
              static_cast<unsigned long long>(seed),
              code == 42 ? "crashed+recovered" : "completed",
              result.detail.c_str(),
              static_cast<unsigned long long>(acked[0]),
              static_cast<unsigned long long>(acked[1]));
  return 0;
}

// --- Replication rounds -----------------------------------------------------

constexpr uint64_t kReplRecords = 512;
constexpr size_t kReplPipelineDepth = 4;

struct ReplPlan {
  bool kill_primary;        // Else kill the replica.
  LoggingKind logging;
  uint64_t kill_after;      // Acked txns before the kill.
  uint64_t post_kill_txns;  // Kill-replica rounds: acks demanded after.
};

ReplPlan MakeReplPlan(uint64_t seed) {
  Rng rng(seed ^ 0x5EED5EEDF00DBEEFull);
  ReplPlan plan;
  plan.kill_primary = seed % 2 == 0;
  plan.logging =
      (seed / 2) % 2 == 0 ? LoggingKind::kValue : LoggingKind::kCommand;
  plan.kill_after = 20 + rng.NextUint64(120);
  plan.post_kill_txns = 20 + rng.NextUint64(40);
  return plan;
}

EngineOptions ReplEngineOptions(LoggingKind logging,
                                const std::string& dir) {
  EngineOptions options;
  options.cc_scheme = CcScheme::kNoWait;
  options.max_threads = 2;
  options.logging = logging;
  options.log_dir = dir;
  options.sync_commit = true;
  options.log_sync = LogSyncPolicy::kFdatasync;
  options.log_flush_interval_us = 20;
  options.log_segment_bytes = 16384;  // Rotate under the shipper.
  return options;
}

volatile std::sig_atomic_t g_repl_child_stop = 0;
void OnReplChildSignal(int) { g_repl_child_stop = 1; }

void ReplChildWait() {
  while (!g_repl_child_stop) {
    std::this_thread::sleep_for(std::chrono::milliseconds(5));
  }
}

/// Primary child: a real semisync server; reports its ephemeral port over
/// the pipe, then serves until SIGTERM (clean close) or SIGKILL (the
/// crash under test).
void RunReplPrimaryChild(const ReplPlan& plan, const std::string& dir,
                         int port_fd) {
  std::signal(SIGTERM, OnReplChildSignal);
  {
    Engine engine(ReplEngineOptions(plan.logging, dir));
    server::KvServiceOptions kv;
    kv.num_records = kReplRecords;
    server::RegisterKvService(&engine, kv);
    server::ServerOptions srv;
    srv.num_workers = 2;
    srv.repl_ack = server::ReplAckMode::kSemisync;
    server::Server server(&engine, srv);
    if (!server.Start().ok()) ::_exit(99);
    const uint16_t port = server.port();
    if (::write(port_fd, &port, sizeof(port)) != sizeof(port)) ::_exit(99);
    ::close(port_fd);
    ReplChildWait();
    server.Stop();
  }  // Engine destruction closes (flushes) the log.
  ::_exit(0);
}

/// Replica child: engine + applier tailing the primary. Reports readiness
/// only once subscribed, so every round's kill lands on a live stream.
void RunReplReplicaChild(const ReplPlan& plan, const std::string& dir,
                         uint16_t primary_port, int ready_fd) {
  std::signal(SIGTERM, OnReplChildSignal);
  {
    Engine engine(ReplEngineOptions(plan.logging, dir));
    server::KvServiceOptions kv;
    kv.num_records = kReplRecords;
    server::RegisterKvService(&engine, kv);
    repl::ReplicaApplierOptions opts;
    opts.primary_port = primary_port;
    opts.reconnect_backoff_ms = 20;
    opts.recv_deadline_ms = 50;
    repl::ReplicaApplier applier(&engine, opts);
    if (!applier.Start().ok()) ::_exit(99);
    while (!applier.connected() && !g_repl_child_stop) {
      std::this_thread::sleep_for(std::chrono::milliseconds(2));
    }
    const uint8_t ready = 1;
    if (::write(ready_fd, &ready, sizeof(ready)) != sizeof(ready)) {
      ::_exit(99);
    }
    ::close(ready_fd);
    ReplChildWait();
    applier.Stop();
  }
  ::_exit(0);
}

server::Request ReplRmwRequest(uint64_t request_id, uint64_t key) {
  server::Request request;
  request.request_id = request_id;
  request.proc_id = server::kKvRmw;
  server::WireWriter args(&request.args);
  args.PutU16(1);
  args.PutU64(key);
  return request;
}

/// Concatenated bytes of every `log.*` segment in index order — segment
/// boundaries may differ between primary and replica, the byte stream may
/// not.
bool ReadLogBytes(const std::string& dir, std::vector<uint8_t>* out) {
  out->clear();
  std::vector<LogSegment> segments;
  if (!ListLogSegments(dir, &segments).ok()) return false;
  for (const LogSegment& segment : segments) {
    std::ifstream f(segment.path, std::ios::binary);
    if (!f) return false;
    out->insert(out->end(), std::istreambuf_iterator<char>(f),
                std::istreambuf_iterator<char>());
  }
  return true;
}

struct AckedCounts {
  std::map<uint64_t, uint64_t> acked;     // key -> committed increments.
  std::map<uint64_t, uint64_t> inflight;  // Sent, unacked at the kill.
};

/// Verifies per-key counters of a recovered engine against the ack record:
/// at least every acked increment, at most acked + in-flight.
RoundResult CheckCounters(Engine* engine, const AckedCounts& counts,
                          const char* which) {
  Index* index = engine->catalog()->GetIndex("kv_pk");
  if (index == nullptr) return Fail("kv_pk index missing after recovery");
  for (uint64_t key = 0; key < kReplRecords; ++key) {
    Row* row = index->Lookup(key);
    if (row == nullptr) {
      return Fail(std::string(which) + ": key " + std::to_string(key) +
                  " missing after recovery");
    }
    uint64_t counter;
    std::memcpy(&counter, engine->RawImage(row), sizeof(counter));
    const uint64_t delta = counter - key;  // Seed counter equals the key.
    const auto acked_it = counts.acked.find(key);
    const uint64_t acked =
        acked_it == counts.acked.end() ? 0 : acked_it->second;
    const auto inflight_it = counts.inflight.find(key);
    const uint64_t inflight =
        inflight_it == counts.inflight.end() ? 0 : inflight_it->second;
    if (delta < acked) {
      return Fail(std::string(which) + ": key " + std::to_string(key) +
                  " lost acked increments: " + std::to_string(delta) +
                  " survived < " + std::to_string(acked) + " acked");
    }
    if (delta > acked + inflight) {
      return Fail(std::string(which) + ": key " + std::to_string(key) +
                  " over-applied: " + std::to_string(delta) + " > acked " +
                  std::to_string(acked) + " + inflight " +
                  std::to_string(inflight));
    }
  }
  return {true, ""};
}

/// The replica's log must be a byte prefix of the primary's: it holds
/// nothing the primary did not write first.
RoundResult CheckLogPrefix(const std::string& primary_dir,
                           const std::string& replica_dir) {
  std::vector<uint8_t> primary_bytes, replica_bytes;
  if (!ReadLogBytes(primary_dir, &primary_bytes)) {
    return Fail("cannot read primary log");
  }
  if (!ReadLogBytes(replica_dir, &replica_bytes)) {
    return Fail("cannot read replica log");
  }
  if (replica_bytes.size() > primary_bytes.size()) {
    return Fail("replica log ran ahead of the primary: " +
                std::to_string(replica_bytes.size()) + " > " +
                std::to_string(primary_bytes.size()));
  }
  if (!std::equal(replica_bytes.begin(), replica_bytes.end(),
                  primary_bytes.begin())) {
    return Fail("replica log diverges from the primary's byte stream");
  }
  return {true, ""};
}

bool ReapChild(pid_t pid, bool killed, const char* who) {
  int wstatus = 0;
  if (::waitpid(pid, &wstatus, 0) != pid) {
    std::fprintf(stderr, "waitpid(%s) failed\n", who);
    return false;
  }
  if (killed) return true;  // SIGKILL: any termination is expected.
  if (!WIFEXITED(wstatus) || WEXITSTATUS(wstatus) != 0) {
    std::fprintf(stderr, "%s child did not exit cleanly (status %d)\n", who,
                 wstatus);
    return false;
  }
  return true;
}

int RunReplRound(uint64_t seed, const std::string& base_dir) {
  const ReplPlan plan = MakeReplPlan(seed);
  const std::string pdir = base_dir + "_p";
  const std::string rdir = base_dir + "_r";

  int port_pipe[2];
  if (::pipe(port_pipe) != 0) return 1;
  const pid_t primary_pid = ::fork();
  if (primary_pid < 0) return 1;
  if (primary_pid == 0) {
    ::close(port_pipe[0]);
    RunReplPrimaryChild(plan, pdir, port_pipe[1]);
  }
  ::close(port_pipe[1]);
  uint16_t port = 0;
  if (::read(port_pipe[0], &port, sizeof(port)) != sizeof(port)) {
    std::fprintf(stderr, "seed %llu: primary never reported a port\n",
                 static_cast<unsigned long long>(seed));
    ::kill(primary_pid, SIGKILL);
    ReapChild(primary_pid, true, "primary");
    return 1;
  }
  ::close(port_pipe[0]);

  int ready_pipe[2];
  if (::pipe(ready_pipe) != 0) return 1;
  const pid_t replica_pid = ::fork();
  if (replica_pid < 0) return 1;
  if (replica_pid == 0) {
    ::close(ready_pipe[0]);
    ::close(port_pipe[0]);
    RunReplReplicaChild(plan, rdir, port, ready_pipe[1]);
  }
  ::close(ready_pipe[1]);
  uint8_t ready = 0;
  const bool subscribed =
      ::read(ready_pipe[0], &ready, sizeof(ready)) == sizeof(ready);
  ::close(ready_pipe[0]);

  auto fail_round = [&](const std::string& detail) {
    std::fprintf(stderr, "seed %llu: FAIL: %s\n",
                 static_cast<unsigned long long>(seed), detail.c_str());
    ::kill(primary_pid, SIGKILL);
    ::kill(replica_pid, SIGKILL);
    ReapChild(primary_pid, true, "primary");
    ReapChild(replica_pid, true, "replica");
    return 1;
  };
  if (!subscribed) return fail_round("replica never subscribed");

  // Pipelined increment load against the primary; the kill lands with
  // requests in flight, so the crash hits mid-commit, not between them.
  Rng rng(seed * 0xD1B54A32D192ED03ull + 7);
  server::Client client;
  if (!client.Connect("127.0.0.1", port).ok()) {
    return fail_round("cannot connect to primary");
  }
  AckedCounts counts;
  std::deque<std::pair<uint64_t, uint64_t>> outstanding;  // id, key.
  uint64_t next_id = 1;
  uint64_t acked_total = 0;
  bool transport_down = false;
  auto receive_one = [&]() -> bool {
    server::Response response;
    if (!client.Recv(&response, /*deadline_ms=*/10000).ok()) return false;
    if (outstanding.empty() ||
        response.request_id != outstanding.front().first) {
      return false;
    }
    const uint64_t key = outstanding.front().second;
    outstanding.pop_front();
    if (response.status != StatusCode::kOk) return false;
    ++counts.acked[key];
    ++acked_total;
    return true;
  };
  while (acked_total < plan.kill_after && !transport_down) {
    while (outstanding.size() < kReplPipelineDepth) {
      const uint64_t key = rng.NextUint64(kReplRecords);
      if (!client.Send(ReplRmwRequest(next_id, key)).ok()) {
        transport_down = true;
        break;
      }
      outstanding.emplace_back(next_id, key);
      ++next_id;
    }
    if (transport_down || !receive_one()) break;
  }
  if (acked_total < plan.kill_after) {
    return fail_round("load stalled before the kill point: " +
                      std::to_string(acked_total) + " acked");
  }

  RoundResult result{true, ""};
  if (plan.kill_primary) {
    // Crash the primary with requests in flight; anything unacked may or
    // may not have reached the replica.
    ::kill(primary_pid, SIGKILL);
    for (const auto& [id, key] : outstanding) ++counts.inflight[key];
    if (!ReapChild(primary_pid, true, "primary")) {
      return fail_round("primary reap failed");
    }
    // The replica survives the failover; stop it cleanly and promote.
    ::kill(replica_pid, SIGTERM);
    if (!ReapChild(replica_pid, false, "replica")) {
      return fail_round("replica did not survive the primary's crash");
    }
    // Promotion = ordinary recovery over the replica's own directories.
    EngineOptions clean = ReplEngineOptions(plan.logging, "");
    clean.logging = LoggingKind::kNone;
    clean.log_dir.clear();
    Engine promoted(clean);
    server::KvServiceOptions kv;
    kv.num_records = kReplRecords;
    server::RegisterKvService(&promoted, kv);
    RecoveryManager recovery(&promoted);
    RecoveryStats stats;
    const Status replay = recovery.Replay(rdir, &stats);
    if (!replay.ok()) {
      result = Fail("promotion replay failed: " + replay.ToString());
    } else {
      result = CheckCounters(&promoted, counts, "promotion");
    }
  } else {
    // Crash the replica; the primary must keep acking (semisync degrades
    // to local durability) and lose nothing.
    ::kill(replica_pid, SIGKILL);
    if (!ReapChild(replica_pid, true, "replica")) {
      return fail_round("replica reap failed");
    }
    while (!outstanding.empty() && receive_one()) {
    }
    if (!outstanding.empty()) {
      return fail_round("primary dropped in-flight requests at replica "
                        "death");
    }
    for (uint64_t i = 0; i < plan.post_kill_txns; ++i) {
      const uint64_t key = rng.NextUint64(kReplRecords);
      server::Response response;
      if (!client.Call(ReplRmwRequest(next_id++, key), &response).ok() ||
          response.status != StatusCode::kOk) {
        return fail_round("primary stopped acking after replica death "
                          "(semisync failed to degrade)");
      }
      ++counts.acked[key];
    }
    ::kill(primary_pid, SIGTERM);
    if (!ReapChild(primary_pid, false, "primary")) {
      return fail_round("primary did not shut down cleanly");
    }
    EngineOptions clean = ReplEngineOptions(plan.logging, "");
    clean.logging = LoggingKind::kNone;
    clean.log_dir.clear();
    Engine recovered(clean);
    server::KvServiceOptions kv;
    kv.num_records = kReplRecords;
    server::RegisterKvService(&recovered, kv);
    RecoveryManager recovery(&recovered);
    RecoveryStats stats;
    const Status replay = recovery.Replay(pdir, &stats);
    if (!replay.ok()) {
      result = Fail("primary replay failed: " + replay.ToString());
    } else {
      result = CheckCounters(&recovered, counts, "primary");
    }
    if (result.ok) {
      // The dead replica's log must reopen cleanly: at worst a torn tail,
      // never mid-log damage.
      LogManagerOptions ropts;
      ropts.dir = rdir;
      ropts.segment_bytes = 16384;
      LogManager rlog(ropts);
      const Status reopened = rlog.Open();
      if (!reopened.ok()) {
        result =
            Fail("dead replica log corrupt beyond its tail: " +
                 reopened.ToString());
      }
      rlog.Close();
    }
  }
  if (result.ok) result = CheckLogPrefix(pdir, rdir);

  if (!result.ok) {
    std::fprintf(stderr, "seed %llu: FAIL: %s\n",
                 static_cast<unsigned long long>(seed),
                 result.detail.c_str());
    return 1;
  }
  std::printf("seed %llu: %s survived (%llu acked, logging=%s)\n",
              static_cast<unsigned long long>(seed),
              plan.kill_primary ? "kill-primary" : "kill-replica",
              static_cast<unsigned long long>(acked_total),
              plan.logging == LoggingKind::kValue ? "value" : "command");
  return 0;
}

int ReplMain(uint64_t rounds, uint64_t base_seed) {
  char dir_template[] = "/tmp/next700_replcrash_XXXXXX";
  const char* base_dir = ::mkdtemp(dir_template);
  if (base_dir == nullptr) {
    std::fprintf(stderr, "mkdtemp failed\n");
    return 1;
  }
  int failures = 0;
  for (uint64_t i = 0; i < rounds; ++i) {
    const uint64_t seed = base_seed + i;
    const std::string round_dir =
        std::string(base_dir) + "/round_" + std::to_string(seed);
    failures += RunReplRound(seed, round_dir);
    RemoveLogDir(round_dir + "_p");
    RemoveLogDir(round_dir + "_r");
  }
  ::rmdir(base_dir);
  std::printf("%llu repl rounds, %d failures\n",
              static_cast<unsigned long long>(rounds), failures);
  return failures == 0 ? 0 : 1;
}

// --- Sharded 2PC rounds -----------------------------------------------------

constexpr int kNumShards = 2;
constexpr uint64_t kShardRecords = 256;
/// Cross-shard rmws touch exactly the pair {2j, 2j+1} — adjacent keys are
/// always on different shards under key % 2 — and single-shard rmws draw
/// one key from [kShardSingleBase, kShardRecords). Disjoint ranges turn
/// the audit into an atomicity proof: both counters of a pair move
/// together or not at all, no matter where the crash landed.
constexpr uint64_t kShardPairKeys = 128;  // Keys 0..127: 64 pairs.
constexpr uint64_t kShardSingleBase = 128;
constexpr uint32_t kShardPartitions = 8;
constexpr size_t kShardPipelineDepth = 4;

struct ShardPlan {
  enum class Kill {
    kCoordinator,  // Router _exit(42)s after the Nth cross-shard txn's
                   // prepares hit the wire, before its decision is logged.
    kParticipant,  // One shard _exit(42)s after its Nth durable prepare,
                   // vote unsent.
    kRouterKill,   // Parent SIGKILLs the router mid-pipeline.
  };
  Kill kill;
  int victim_shard;     // kParticipant only.
  uint64_t kill_after;  // Cross-shard txns (crash hooks) or acks (SIGKILL).
};

ShardPlan MakeShardPlan(uint64_t seed) {
  Rng rng(seed ^ 0xA5A5D00DCAFEF00Dull);
  ShardPlan plan;
  switch (seed % 3) {
    case 0: plan.kill = ShardPlan::Kill::kCoordinator; break;
    case 1: plan.kill = ShardPlan::Kill::kParticipant; break;
    default: plan.kill = ShardPlan::Kill::kRouterKill; break;
  }
  plan.victim_shard = static_cast<int>((seed / 3) % kNumShards);
  plan.kill_after = 8 + rng.NextUint64(32);
  return plan;
}

/// Shard server child: a real 2PC-capable server over a value-logged
/// engine holding the keys where key % kNumShards == shard_id. Reports its
/// ephemeral port over the pipe, then serves until SIGTERM (clean close,
/// in-doubt branches released to the log) or _exit(42) from the
/// crash_after_prepares hook.
void RunShardServerChild(int shard_id, const std::string& dir,
                         uint64_t crash_after_prepares, bool recover,
                         int port_fd) {
  std::signal(SIGTERM, OnReplChildSignal);
  {
    EngineOptions eng = ReplEngineOptions(LoggingKind::kValue, dir);
    eng.num_partitions = kShardPartitions;
    Engine engine(eng);
    server::KvServiceOptions kv;
    kv.num_records = kShardRecords;
    kv.num_shards = kNumShards;
    kv.shard_id = static_cast<uint32_t>(shard_id);
    server::RegisterKvService(&engine, kv);
    if (recover) {
      RecoverOutcome outcome;
      if (!RecoverEngine(&engine, /*checkpoint_dir=*/"", dir,
                         /*rebuilder=*/nullptr, &outcome)
               .ok()) {
        ::_exit(98);
      }
    }
    server::ServerOptions srv;
    srv.num_workers = 2;
    srv.crash_after_prepares = crash_after_prepares;
    server::Server server(&engine, srv);
    if (!server.Start().ok()) ::_exit(99);
    const uint16_t port = server.port();
    if (::write(port_fd, &port, sizeof(port)) != sizeof(port)) ::_exit(99);
    ::close(port_fd);
    ReplChildWait();
    server.Stop();
  }
  ::_exit(0);
}

/// Router event-loop backend for shard rounds, from the optional
/// `crashtest shard ... [io-backend]` argument. Inherited across fork.
io::IoBackendKind g_shard_io_backend = io::IoBackendKind::kAuto;

/// Router child: the 2PC coordinator. Reports its port only after every
/// shard connection is up (in-doubt backlogs resolved), so the parent's
/// first request always lands on a ready topology.
void RunShardRouterChild(const std::vector<uint16_t>& shard_ports,
                         const std::string& dir,
                         uint64_t crash_after_prepares_sent, int port_fd) {
  std::signal(SIGTERM, OnReplChildSignal);
  {
    shard::ShardRouterOptions opts;
    for (const uint16_t shard_port : shard_ports) {
      opts.shards.push_back("127.0.0.1:" + std::to_string(shard_port));
    }
    opts.num_partitions = kShardPartitions;
    opts.log_dir = dir;
    opts.vote_timeout_ms = 2000;
    opts.io_backend = g_shard_io_backend;
    opts.crash_after_prepares_sent = crash_after_prepares_sent;
    shard::ShardRouter router(opts);
    if (!router.Start().ok()) ::_exit(99);
    if (!router.WaitShardsConnected(15000)) ::_exit(97);
    const uint16_t port = router.port();
    if (::write(port_fd, &port, sizeof(port)) != sizeof(port)) ::_exit(99);
    ::close(port_fd);
    ReplChildWait();
    router.Stop();
  }
  ::_exit(0);
}

/// Forks `child` with the write end of a fresh pipe and reads the port it
/// reports back. Returns -1 (no child) or the pid; *port stays 0 when the
/// child died before reporting.
pid_t ForkWithPort(const std::function<void(int)>& child, uint16_t* port) {
  *port = 0;
  int fds[2];
  if (::pipe(fds) != 0) return -1;
  const pid_t pid = ::fork();
  if (pid < 0) {
    ::close(fds[0]);
    ::close(fds[1]);
    return -1;
  }
  if (pid == 0) {
    ::close(fds[0]);
    child(fds[1]);
    ::_exit(99);  // The child entry point never returns.
  }
  ::close(fds[1]);
  if (::read(fds[0], port, sizeof(*port)) != sizeof(*port)) *port = 0;
  ::close(fds[0]);
  return pid;
}

struct ShardTopology {
  pid_t shard_pids[kNumShards] = {-1, -1};
  uint16_t shard_ports[kNumShards] = {0, 0};
  pid_t router_pid = -1;
  uint16_t router_port = 0;
};

/// Starts both shards and the router. Crash hooks arm only on the first
/// (pre-crash) incarnation; the recovery incarnation replays the same
/// directories with no hooks.
bool StartShardTopology(const ShardPlan& plan, const std::string& base_dir,
                        bool recover, ShardTopology* topo) {
  for (int i = 0; i < kNumShards; ++i) {
    const uint64_t crash_after =
        !recover && plan.kill == ShardPlan::Kill::kParticipant &&
                plan.victim_shard == i
            ? plan.kill_after
            : 0;
    const std::string dir = base_dir + "_s" + std::to_string(i);
    topo->shard_pids[i] = ForkWithPort(
        [&](int fd) {
          RunShardServerChild(i, dir, crash_after, recover, fd);
        },
        &topo->shard_ports[i]);
    if (topo->shard_pids[i] < 0 || topo->shard_ports[i] == 0) return false;
  }
  const uint64_t router_crash =
      !recover && plan.kill == ShardPlan::Kill::kCoordinator
          ? plan.kill_after
          : 0;
  const std::vector<uint16_t> ports(topo->shard_ports,
                                    topo->shard_ports + kNumShards);
  topo->router_pid = ForkWithPort(
      [&](int fd) {
        RunShardRouterChild(ports, base_dir + "_rt", router_crash, fd);
      },
      &topo->router_port);
  return topo->router_pid > 0 && topo->router_port != 0;
}

/// Reaps *pid (which must have terminated or been signalled) and marks it
/// reaped so the fail path does not double-wait.
bool ReapShardMember(pid_t* pid, bool killed, const char* who) {
  if (*pid <= 0) return true;
  const bool ok = ReapChild(*pid, killed, who);
  *pid = -1;
  return ok;
}

/// Reaps a member that must have died through its _exit(42) crash hook.
bool ReapCrashedMember(pid_t* pid, const char* who) {
  if (*pid <= 0) return true;
  int wstatus = 0;
  const pid_t reaped = ::waitpid(*pid, &wstatus, 0);
  const pid_t pid_was = *pid;
  *pid = -1;
  if (reaped != pid_was) {
    std::fprintf(stderr, "waitpid(%s) failed\n", who);
    return false;
  }
  if (!WIFEXITED(wstatus) || WEXITSTATUS(wstatus) != 42) {
    std::fprintf(stderr, "%s died outside its crash hook (status %d)\n",
                 who, wstatus);
    return false;
  }
  return true;
}

/// SIGTERMs a live member and demands a clean exit.
bool StopShardMember(pid_t* pid, const char* who) {
  if (*pid <= 0) return true;
  ::kill(*pid, SIGTERM);
  return ReapShardMember(pid, /*killed=*/false, who);
}

void KillShardTopology(ShardTopology* topo) {
  pid_t* pids[] = {&topo->shard_pids[0], &topo->shard_pids[1],
                   &topo->router_pid};
  for (pid_t* pid : pids) {
    if (*pid > 0) ::kill(*pid, SIGKILL);
  }
  for (pid_t* pid : pids) ReapShardMember(pid, /*killed=*/true, "topology");
}

server::Request ShardRmwRequest(uint64_t request_id,
                                const std::vector<uint64_t>& keys) {
  server::Request request;
  request.request_id = request_id;
  request.proc_id = server::kKvRmw;
  server::WireWriter args(&request.args);
  args.PutU16(static_cast<uint16_t>(keys.size()));
  for (const uint64_t key : keys) args.PutU64(key);
  return request;
}

/// Reads every key through the (recovered) router, retrying kUnavailable
/// while in-doubt gates clear, and checks the durability + atomicity
/// contract against the parent's ack record. Finishes with a liveness
/// probe: one single-shard and one cross-shard rmw must commit.
RoundResult AuditShardRound(uint16_t router_port, const AckedCounts& counts) {
  server::Client client;
  if (!client.Connect("127.0.0.1", router_port).ok()) {
    return Fail("audit: cannot connect to recovered router");
  }
  uint64_t next_id = 1;
  std::vector<uint64_t> deltas(kShardRecords, 0);
  for (uint64_t key = 0; key < kShardRecords; ++key) {
    server::Response response;
    for (int attempt = 0;; ++attempt) {
      server::Request request;
      request.request_id = next_id++;
      request.proc_id = server::kKvGet;
      server::WireWriter args(&request.args);
      args.PutU64(key);
      if (!client.Call(request, &response).ok()) {
        return Fail("audit transport failure at key " + std::to_string(key));
      }
      if (response.status != StatusCode::kUnavailable) break;
      if (attempt >= 200) {
        return Fail("in-doubt gate never cleared (key " +
                    std::to_string(key) + ")");
      }
      std::this_thread::sleep_for(std::chrono::milliseconds(50));
    }
    if (response.status != StatusCode::kOk) {
      return Fail("audit read of key " + std::to_string(key) +
                  " failed with status " +
                  std::to_string(static_cast<int>(response.status)));
    }
    if (response.payload.size() < sizeof(uint64_t)) {
      return Fail("audit read of key " + std::to_string(key) +
                  " returned a short payload");
    }
    uint64_t counter;
    std::memcpy(&counter, response.payload.data(), sizeof(counter));
    deltas[key] = counter - key;  // Seed counter equals the key.
  }
  for (uint64_t key = 0; key < kShardRecords; ++key) {
    const auto acked_it = counts.acked.find(key);
    const uint64_t acked =
        acked_it == counts.acked.end() ? 0 : acked_it->second;
    const auto inflight_it = counts.inflight.find(key);
    const uint64_t inflight =
        inflight_it == counts.inflight.end() ? 0 : inflight_it->second;
    if (deltas[key] < acked) {
      return Fail("key " + std::to_string(key) + " lost acked increments: " +
                  std::to_string(deltas[key]) + " survived < " +
                  std::to_string(acked) + " acked");
    }
    if (deltas[key] > acked + inflight) {
      return Fail("key " + std::to_string(key) + " over-applied: " +
                  std::to_string(deltas[key]) + " > acked " +
                  std::to_string(acked) + " + inflight " +
                  std::to_string(inflight));
    }
  }
  for (uint64_t key = 0; key < kShardPairKeys; key += 2) {
    if (deltas[key] != deltas[key + 1]) {
      return Fail("atomicity violation: pair {" + std::to_string(key) + "," +
                  std::to_string(key + 1) + "} diverged: " +
                  std::to_string(deltas[key]) + " vs " +
                  std::to_string(deltas[key + 1]));
    }
  }
  const std::vector<std::vector<uint64_t>> probes = {
      {kShardSingleBase}, {0, 1}};
  for (const auto& keys : probes) {
    bool committed = false;
    for (int attempt = 0; attempt < 100 && !committed; ++attempt) {
      server::Response response;
      if (!client.Call(ShardRmwRequest(next_id++, keys), &response).ok()) {
        return Fail("liveness probe transport failure");
      }
      if (response.status == StatusCode::kOk) {
        committed = true;
      } else if (response.status == StatusCode::kUnavailable ||
                 response.status == StatusCode::kAborted) {
        std::this_thread::sleep_for(std::chrono::milliseconds(20));
      } else {
        return Fail("liveness probe failed with status " +
                    std::to_string(static_cast<int>(response.status)));
      }
    }
    if (!committed) {
      return Fail(keys.size() > 1
                      ? "cross-shard transactions never recovered"
                      : "single-shard transactions never recovered");
    }
  }
  return {true, ""};
}

int RunShardRound(uint64_t seed, const std::string& base_dir) {
  const ShardPlan plan = MakeShardPlan(seed);
  ShardTopology topo;
  auto fail_round = [&](const std::string& detail) {
    std::fprintf(stderr, "seed %llu: FAIL: %s\n",
                 static_cast<unsigned long long>(seed), detail.c_str());
    KillShardTopology(&topo);
    return 1;
  };
  if (!StartShardTopology(plan, base_dir, /*recover=*/false, &topo)) {
    return fail_round("shard topology failed to start");
  }

  server::Client client;
  if (!client.Connect("127.0.0.1", topo.router_port).ok()) {
    return fail_round("cannot connect to router");
  }
  Rng rng(seed * 0x9E3779B97F4A7C15ull + 13);
  AckedCounts counts;
  struct Pending {
    uint64_t id;
    std::vector<uint64_t> keys;
  };
  std::deque<Pending> outstanding;
  uint64_t next_id = 1;
  uint64_t acked_txns = 0;
  uint64_t sent_txns = 0;
  bool transport_down = false;
  bool shard_unavailable = false;
  constexpr uint64_t kMaxTxns = 4000;

  // Half the mix is a deliberate cross-shard pair; the rest is one
  // single-shard key from the disjoint upper range.
  auto make_keys = [&]() -> std::vector<uint64_t> {
    if (rng.NextUint64(100) < 50) {
      const uint64_t pair = rng.NextUint64(kShardPairKeys / 2) * 2;
      return {pair, pair + 1};
    }
    return {kShardSingleBase +
            rng.NextUint64(kShardRecords - kShardSingleBase)};
  };
  auto receive_one = [&]() -> bool {
    server::Response response;
    if (!client.Recv(&response, /*deadline_ms=*/10000).ok()) return false;
    if (outstanding.empty() ||
        response.request_id != outstanding.front().id) {
      return false;
    }
    const std::vector<uint64_t> keys = std::move(outstanding.front().keys);
    outstanding.pop_front();
    switch (response.status) {
      case StatusCode::kOk:
        for (const uint64_t key : keys) ++counts.acked[key];
        ++acked_txns;
        break;
      case StatusCode::kAborted:
        // Definitive: presumed abort — no commit decision exists, nothing
        // was (or ever will be) applied.
        break;
      default:
        // kUnavailable and friends: outcome unknown — the work may be
        // durable on a shard with the reply lost. Widen the upper bound.
        for (const uint64_t key : keys) ++counts.inflight[key];
        if (response.status == StatusCode::kUnavailable) {
          shard_unavailable = true;
        }
        break;
    }
    return true;
  };

  const bool sigkill_mode = plan.kill == ShardPlan::Kill::kRouterKill;
  while (!transport_down && !shard_unavailable && sent_txns < kMaxTxns) {
    if (sigkill_mode && acked_txns >= plan.kill_after) break;
    while (outstanding.size() < kShardPipelineDepth) {
      std::vector<uint64_t> keys = make_keys();
      if (!client.Send(ShardRmwRequest(next_id, keys)).ok()) {
        transport_down = true;
        break;
      }
      outstanding.push_back({next_id, std::move(keys)});
      ++next_id;
      ++sent_txns;
    }
    if (transport_down) break;
    if (!receive_one()) {
      transport_down = true;
      break;
    }
  }
  auto spill_outstanding = [&]() {
    for (const Pending& pending : outstanding) {
      for (const uint64_t key : pending.keys) ++counts.inflight[key];
    }
    outstanding.clear();
  };

  const char* mode = "?";
  switch (plan.kill) {
    case ShardPlan::Kill::kCoordinator: {
      mode = "coordinator-crash";
      if (!transport_down) {
        return fail_round("coordinator crash hook never fired");
      }
      spill_outstanding();
      if (!ReapCrashedMember(&topo.router_pid, "router")) {
        return fail_round("router reap failed");
      }
      for (int i = 0; i < kNumShards; ++i) {
        if (!StopShardMember(&topo.shard_pids[i], "shard")) {
          return fail_round("shard did not survive the coordinator crash");
        }
      }
      break;
    }
    case ShardPlan::Kill::kParticipant: {
      mode = "participant-crash";
      if (transport_down) {
        return fail_round("router connection broke before the participant "
                          "crash");
      }
      if (!shard_unavailable) {
        return fail_round("participant crash hook never fired");
      }
      // The router is alive: every outstanding request gets some reply.
      while (!outstanding.empty() && receive_one()) {
      }
      spill_outstanding();
      if (!ReapCrashedMember(&topo.shard_pids[plan.victim_shard],
                             "victim shard")) {
        return fail_round("victim shard reap failed");
      }
      if (!StopShardMember(&topo.router_pid, "router")) {
        return fail_round("router did not survive the participant crash");
      }
      const int survivor = 1 - plan.victim_shard;
      if (!StopShardMember(&topo.shard_pids[survivor], "surviving shard")) {
        return fail_round("surviving shard did not stop cleanly");
      }
      break;
    }
    case ShardPlan::Kill::kRouterKill: {
      mode = "router-sigkill";
      if (transport_down || shard_unavailable) {
        return fail_round("topology degraded before the kill point");
      }
      ::kill(topo.router_pid, SIGKILL);
      spill_outstanding();
      if (!ReapShardMember(&topo.router_pid, /*killed=*/true, "router")) {
        return fail_round("router reap failed");
      }
      for (int i = 0; i < kNumShards; ++i) {
        if (!StopShardMember(&topo.shard_pids[i], "shard")) {
          return fail_round("shard did not survive the router kill");
        }
      }
      break;
    }
  }

  // Recovery incarnation: same directories, no crash hooks. The router's
  // decision-log scan + in-doubt resolution must clear every branch.
  topo = ShardTopology();
  if (!StartShardTopology(plan, base_dir, /*recover=*/true, &topo)) {
    return fail_round("recovered topology failed to start");
  }
  RoundResult result = AuditShardRound(topo.router_port, counts);
  if (!StopShardMember(&topo.router_pid, "recovered router") && result.ok) {
    result = Fail("recovered router did not stop cleanly");
  }
  for (int i = 0; i < kNumShards; ++i) {
    if (!StopShardMember(&topo.shard_pids[i], "recovered shard") &&
        result.ok) {
      result = Fail("recovered shard did not stop cleanly");
    }
  }
  if (!result.ok) {
    std::fprintf(stderr, "seed %llu: FAIL: %s\n",
                 static_cast<unsigned long long>(seed),
                 result.detail.c_str());
    return 1;
  }
  std::printf("seed %llu: %s survived (%llu acked of %llu sent)\n",
              static_cast<unsigned long long>(seed), mode,
              static_cast<unsigned long long>(acked_txns),
              static_cast<unsigned long long>(sent_txns));
  return 0;
}

int ShardMain(uint64_t rounds, uint64_t base_seed) {
  char dir_template[] = "/tmp/next700_shardcrash_XXXXXX";
  const char* base_dir = ::mkdtemp(dir_template);
  if (base_dir == nullptr) {
    std::fprintf(stderr, "mkdtemp failed\n");
    return 1;
  }
  int failures = 0;
  for (uint64_t i = 0; i < rounds; ++i) {
    const uint64_t seed = base_seed + i;
    const std::string round_dir =
        std::string(base_dir) + "/round_" + std::to_string(seed);
    failures += RunShardRound(seed, round_dir);
    RemoveLogDir(round_dir + "_s0");
    RemoveLogDir(round_dir + "_s1");
    RemoveLogDir(round_dir + "_rt");
  }
  ::rmdir(base_dir);
  std::printf("%llu shard rounds, %d failures\n",
              static_cast<unsigned long long>(rounds), failures);
  return failures == 0 ? 0 : 1;
}

int Main(int argc, char** argv) {
  // Children embed real servers; a peer killed mid-write must surface as
  // EPIPE, not SIGPIPE-terminate the surviving processes. Inherited
  // across fork.
  std::signal(SIGPIPE, SIG_IGN);
  // Children flush inherited stdio on their crash hooks; keep the parent's
  // buffer empty so round banners are not replayed by forked children.
  std::setvbuf(stdout, nullptr, _IOLBF, 0);
  if (argc > 1 && std::strcmp(argv[1], "shard") == 0) {
    const uint64_t rounds =
        argc > 2 ? std::strtoull(argv[2], nullptr, 10) : 20;
    const uint64_t base_seed =
        argc > 3 ? std::strtoull(argv[3], nullptr, 10) : 1;
    if (argc > 4 &&
        !io::ParseIoBackendKind(argv[4], &g_shard_io_backend)) {
      std::fprintf(stderr, "bad io-backend: %s (auto|uring|epoll)\n",
                   argv[4]);
      return 2;
    }
    return ShardMain(rounds, base_seed);
  }
  if (argc > 1 && std::strcmp(argv[1], "repl") == 0) {
    const uint64_t rounds =
        argc > 2 ? std::strtoull(argv[2], nullptr, 10) : 20;
    const uint64_t base_seed =
        argc > 3 ? std::strtoull(argv[3], nullptr, 10) : 1;
    return ReplMain(rounds, base_seed);
  }
  const uint64_t rounds = argc > 1 ? std::strtoull(argv[1], nullptr, 10) : 20;
  const uint64_t base_seed =
      argc > 2 ? std::strtoull(argv[2], nullptr, 10) : 1;

  char dir_template[] = "/tmp/next700_crashtest_XXXXXX";
  const char* base_dir = ::mkdtemp(dir_template);
  if (base_dir == nullptr) {
    std::fprintf(stderr, "mkdtemp failed\n");
    return 1;
  }

  int failures = 0;
  for (uint64_t i = 0; i < rounds; ++i) {
    const uint64_t seed = base_seed + i;
    const std::string log_dir =
        std::string(base_dir) + "/round_" + std::to_string(seed);
    failures += RunRound(seed, log_dir);
    RemoveLogDir(log_dir);
    RemoveDirContents(log_dir + ".ckpt");
  }
  ::rmdir(base_dir);
  std::printf("%llu rounds, %d failures\n",
              static_cast<unsigned long long>(rounds), failures);
  return failures == 0 ? 0 : 1;
}

}  // namespace
}  // namespace next700

int main(int argc, char** argv) { return next700::Main(argc, argv); }
