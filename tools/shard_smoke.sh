#!/usr/bin/env bash
# Sharded 2PC smoke test: start two shard servers and a shard router, drive
# a mixed single-shard / cross-shard rmw load through the router, kill -9
# one participant mid-load, restart it with --recover (same directories),
# and prove every router-acked transaction survived via the full-keyspace
# counter audit (each acked rmw adds exactly --rmw-keys increments, so the
# audit's increment sum must cover ok * rmw_keys). The reconnecting router
# resolves the dead shard's in-doubt prepares from its durable decision
# log. Used by CI.
#
# usage: shard_smoke.sh <build-dir> [io-backend]
#   io-backend: auto (default) | uring | epoll — passed to the shard
#   servers and to the router's event loops.
set -euo pipefail

BUILD_DIR="${1:?usage: shard_smoke.sh <build-dir> [io-backend]}"
IO_BACKEND="${2:-auto}"

RUN="$BUILD_DIR/tools/next700_run"
LOADGEN="$BUILD_DIR/tools/next700_loadgen"
S0LOG="$(mktemp -d /tmp/next700_shard.XXXXXX.s0logd)"
S1LOG="$(mktemp -d /tmp/next700_shard.XXXXXX.s1logd)"
RTLOG="$(mktemp -d /tmp/next700_shard.XXXXXX.rtlogd)"
S0OUT="$(mktemp /tmp/next700_shard.XXXXXX.s0out)"
S1OUT="$(mktemp /tmp/next700_shard.XXXXXX.s1out)"
RTOUT="$(mktemp /tmp/next700_shard.XXXXXX.rtout)"
LOUT="$(mktemp /tmp/next700_shard.XXXXXX.lout)"
RECORDS=2000
PARTITIONS=8

cleanup() {
  for pid in "${S0_PID:-}" "${S1_PID:-}" "${RT_PID:-}"; do
    [[ -n "$pid" ]] && kill "$pid" 2>/dev/null || true
    [[ -n "$pid" ]] && wait "$pid" 2>/dev/null || true
  done
  rm -rf "$S0LOG" "$S1LOG" "$RTLOG" "$S0OUT" "$S1OUT" "$RTOUT" "$LOUT"
}
trap cleanup EXIT

# Waits for "listening on HOST:PORT" in $2 from pid $1; echoes the port.
wait_port() {
  local pid="$1" out="$2" port=""
  for _ in $(seq 1 150); do
    port="$(sed -n 's/^listening on [^:]*:\([0-9]*\).*$/\1/p' "$out" | head -n1)"
    [[ -n "$port" ]] && { echo "$port"; return 0; }
    kill -0 "$pid" 2>/dev/null || { cat "$out" >&2; echo "server died" >&2; return 1; }
    sleep 0.1
  done
  cat "$out" >&2; echo "server never started listening" >&2; return 1
}

start_shard() {  # id log_dir stdout_file port [--recover]
  "$RUN" serve --port="$4" --workers=2 --records="$RECORDS" \
    --partitions="$PARTITIONS" --num-shards=2 --shard-id="$1" \
    --logging=value --log-sync=fdatasync --log-dir="$2" \
    --io-backend="$IO_BACKEND" ${5:-} > "$3" &
}

start_shard 0 "$S0LOG" "$S0OUT" 0
S0_PID=$!
S0PORT="$(wait_port "$S0_PID" "$S0OUT")"

start_shard 1 "$S1LOG" "$S1OUT" 0
S1_PID=$!
S1PORT="$(wait_port "$S1_PID" "$S1OUT")"

"$RUN" serve --role=shard-router --port=0 \
  --shards="127.0.0.1:$S0PORT,127.0.0.1:$S1PORT" \
  --partitions="$PARTITIONS" --log-dir="$RTLOG" \
  --io-backend="$IO_BACKEND" > "$RTOUT" &
RT_PID=$!
RTPORT="$(wait_port "$RT_PID" "$RTOUT")"
for _ in $(seq 1 150); do
  grep -q "all 2 shards connected" "$RTOUT" && break
  sleep 0.1
done
grep -q "all 2 shards connected" "$RTOUT" || {
  cat "$RTOUT" >&2; echo "router never connected its shards" >&2; exit 1
}

# Mixed pure-rmw load (20% deliberately cross-shard): every acked txn adds
# exactly 2 counter increments. The participant kill lands mid-load, so
# in-flight prepares are left in doubt on the dead shard; requests routed
# to it fail over to error replies, which must not break the transport
# (--check tolerates non-OK statuses, not dropped connections).
"$LOADGEN" --port="$RTPORT" --connections=2 --pipeline=8 --seconds=4 \
  --records="$RECORDS" --get=0.0 --put=0.0 --rmw-keys=2 \
  --num-shards=2 --multi-shard=0.2 --check > "$LOUT" &
LOAD_PID=$!
sleep 1.5
kill -9 "$S1_PID"
wait "$S1_PID" 2>/dev/null || true
S1_PID=""
wait "$LOAD_PID" || { cat "$LOUT"; echo "load through router failed"; exit 1; }
cat "$LOUT"
ACKED_OK="$(sed -n 's/^ok: *\([0-9]*\)$/\1/p' "$LOUT")"
[[ -n "$ACKED_OK" && "$ACKED_OK" -gt 0 ]] || { echo "no acked txns"; exit 1; }
ACKED_INCREMENTS=$((ACKED_OK * 2))

# Restart the dead participant over its own directories on its old port
# (the router keeps dialing the configured address). The router reconnects
# on its own, replays commit decisions from its durable log for the
# shard's in-doubt prepares, and presumes abort for the rest.
start_shard 1 "$S1LOG" "$S1OUT" "$S1PORT" --recover
S1_PID=$!
wait_port "$S1_PID" "$S1OUT" > /dev/null

# Every router-acked increment must have survived the participant crash.
# Retry while the topology reconnects / the in-doubt gate clears.
AUDIT_OUT=""
for _ in $(seq 1 100); do
  if AUDIT_OUT="$("$LOADGEN" --port="$RTPORT" --records="$RECORDS" --audit)"
  then break; fi
  AUDIT_OUT=""
  sleep 0.2
done
[[ -n "$AUDIT_OUT" ]] || { echo "audit never succeeded"; exit 1; }
echo "$AUDIT_OUT"
SURVIVED="$(echo "$AUDIT_OUT" | sed -n 's/.*increments=\([0-9]*\).*/\1/p')"
[[ -n "$SURVIVED" ]] || { echo "audit produced no increment count"; exit 1; }
if [[ "$SURVIVED" -lt "$ACKED_INCREMENTS" ]]; then
  echo "FAIL: acked work lost in participant crash:" \
       "acked=$ACKED_INCREMENTS survived=$SURVIVED"
  exit 1
fi
echo "crash audit OK: acked=$ACKED_INCREMENTS survived=$SURVIVED"

# The recovered topology is live: cross-shard 2PC commits again.
"$LOADGEN" --port="$RTPORT" --connections=1 --pipeline=4 --seconds=1 \
  --records="$RECORDS" --get=0.0 --put=0.0 --rmw-keys=2 \
  --num-shards=2 --multi-shard=0.5 --check

kill -INT "$RT_PID"
wait "$RT_PID" 2>/dev/null || true
RT_PID=""
cat "$RTOUT"
for pid_var in S0_PID S1_PID; do
  pid="${!pid_var}"
  kill -INT "$pid"
  wait "$pid" 2>/dev/null || true
done
S0_PID=""; S1_PID=""
echo "shard smoke OK"
