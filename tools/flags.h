#ifndef NEXT700_TOOLS_FLAGS_H_
#define NEXT700_TOOLS_FLAGS_H_

/// \file
/// Strict command-line parsing shared by the CLI tools. Flags are
/// `--name[=value]`; an optional single positional subcommand may precede
/// them. Parsing is strict so typos fail loudly instead of silently running
/// the wrong configuration: unknown flags, non-numeric values for numeric
/// flags, and bad booleans all exit with a usage message.

#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <map>
#include <set>
#include <string>

namespace next700 {
namespace tools {

class Flags {
 public:
  using UsageFn = void (*)();

  /// `usage` is printed (after the error) whenever parsing or validation
  /// fails. If `allow_subcommand` is set, one leading non-flag argument is
  /// captured as subcommand().
  Flags(int argc, char** argv, UsageFn usage, bool allow_subcommand = false)
      : usage_(usage) {
    int i = 1;
    if (allow_subcommand && i < argc && std::strncmp(argv[i], "--", 2) != 0) {
      subcommand_ = argv[i++];
    }
    for (; i < argc; ++i) {
      std::string arg = argv[i];
      if (arg.rfind("--", 0) != 0) Die("expected --flag[=value]: " + arg);
      arg = arg.substr(2);
      const size_t eq = arg.find('=');
      if (eq == std::string::npos) {
        values_[arg] = "true";
      } else {
        values_[arg.substr(0, eq)] = arg.substr(eq + 1);
      }
    }
  }

  const std::string& subcommand() const { return subcommand_; }

  std::string GetString(const std::string& key, const std::string& fallback) {
    used_.insert(key);
    auto it = values_.find(key);
    return it == values_.end() ? fallback : it->second;
  }

  int64_t GetInt(const std::string& key, int64_t fallback) {
    const std::string v = GetString(key, "");
    if (v.empty()) return fallback;
    char* end = nullptr;
    errno = 0;
    const int64_t parsed = std::strtoll(v.c_str(), &end, 10);
    if (errno != 0 || end == v.c_str() || *end != '\0') {
      Die("bad integer for --" + key + ": " + v);
    }
    return parsed;
  }

  double GetDouble(const std::string& key, double fallback) {
    const std::string v = GetString(key, "");
    if (v.empty()) return fallback;
    char* end = nullptr;
    errno = 0;
    const double parsed = std::strtod(v.c_str(), &end);
    if (errno != 0 || end == v.c_str() || *end != '\0') {
      Die("bad number for --" + key + ": " + v);
    }
    return parsed;
  }

  bool GetBool(const std::string& key, bool fallback) {
    const std::string v = GetString(key, "");
    if (v.empty()) return fallback;
    if (v == "true" || v == "1") return true;
    if (v == "false" || v == "0") return false;
    Die("bad boolean for --" + key + ": " + v + " (use true/false)");
  }

  /// Call after every flag has been consumed; dies on leftovers (typos).
  void RejectUnknown() const {
    for (const auto& [key, value] : values_) {
      (void)value;
      if (used_.find(key) == used_.end()) Die("unknown flag: --" + key);
    }
  }

  [[noreturn]] void Die(const std::string& message) const {
    std::fprintf(stderr, "error: %s\n", message.c_str());
    usage_();
    std::exit(1);
  }

 private:
  UsageFn usage_;
  std::string subcommand_;
  std::map<std::string, std::string> values_;
  std::set<std::string> used_;
};

}  // namespace tools
}  // namespace next700

#endif  // NEXT700_TOOLS_FLAGS_H_
