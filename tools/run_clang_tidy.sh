#!/usr/bin/env bash
# Runs clang-tidy (config: .clang-tidy at the repo root) over the first-party
# sources using the compile database of an existing build tree.
#
# Usage: tools/run_clang_tidy.sh [build-dir] [-- extra clang-tidy args]
#   build-dir defaults to build/. The build tree must have been configured
#   with CMAKE_EXPORT_COMPILE_COMMANDS=ON (this script reconfigures it with
#   the flag if compile_commands.json is missing).
set -euo pipefail

repo_root="$(cd "$(dirname "$0")/.." && pwd)"
build_dir="${1:-$repo_root/build}"
shift || true
[ "${1:-}" = "--" ] && shift

tidy_bin="${CLANG_TIDY:-}"
if [ -z "$tidy_bin" ]; then
  for candidate in clang-tidy clang-tidy-18 clang-tidy-17 clang-tidy-16 \
                   clang-tidy-15 clang-tidy-14; do
    if command -v "$candidate" > /dev/null 2>&1; then
      tidy_bin="$candidate"
      break
    fi
  done
fi
if [ -z "$tidy_bin" ]; then
  echo "run_clang_tidy.sh: clang-tidy not found on PATH." >&2
  echo "Install it (e.g. apt-get install clang-tidy) or set CLANG_TIDY." >&2
  exit 2
fi

if [ ! -f "$build_dir/compile_commands.json" ]; then
  echo "run_clang_tidy.sh: exporting compile database in $build_dir" >&2
  cmake -B "$build_dir" -S "$repo_root" \
    -DCMAKE_EXPORT_COMPILE_COMMANDS=ON > /dev/null
fi

cd "$repo_root"
# First-party translation units only; generated/third-party code is excluded
# by HeaderFilterRegex in .clang-tidy.
mapfile -t sources < <(git ls-files 'src/**/*.cc' 'tools/*.cc' \
                       'examples/*.cpp')

echo "run_clang_tidy.sh: ${#sources[@]} files with $tidy_bin" >&2
"$tidy_bin" -p "$build_dir" --quiet "$@" "${sources[@]}"
