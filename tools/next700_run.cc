/// next700_run — command-line experiment runner. Composes an engine from
/// flags, loads a workload, runs a timed measurement, and prints throughput
/// plus latency percentiles. This is the "I just want to try a
/// configuration" entry point; the bench_* binaries regenerate the paper's
/// fixed experiment suite.
///
/// Examples:
///   next700_run --workload=ycsb --cc=SILO --threads=4 --theta=0.9
///   next700_run --workload=tpcc --cc=WAIT_DIE --warehouses=4
///       --logging=command --log-path=/tmp/tpcc.log
///   next700_run --workload=tatp --cc=MVTO --seconds=5

#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <map>
#include <set>
#include <memory>
#include <string>

#include "workload/driver.h"
#include "workload/smallbank.h"
#include "workload/tatp.h"
#include "workload/tpcc.h"
#include "workload/ycsb.h"

namespace next700 {
namespace {

class Flags {
 public:
  Flags(int argc, char** argv) {
    for (int i = 1; i < argc; ++i) {
      std::string arg = argv[i];
      if (arg.rfind("--", 0) != 0) Die("expected --flag[=value]: " + arg);
      arg = arg.substr(2);
      const size_t eq = arg.find('=');
      if (eq == std::string::npos) {
        values_[arg] = "true";
      } else {
        values_[arg.substr(0, eq)] = arg.substr(eq + 1);
      }
    }
  }

  std::string GetString(const std::string& key,
                        const std::string& fallback) {
    used_.insert(key);
    auto it = values_.find(key);
    return it == values_.end() ? fallback : it->second;
  }
  int64_t GetInt(const std::string& key, int64_t fallback) {
    const std::string v = GetString(key, "");
    return v.empty() ? fallback : std::strtoll(v.c_str(), nullptr, 10);
  }
  double GetDouble(const std::string& key, double fallback) {
    const std::string v = GetString(key, "");
    return v.empty() ? fallback : std::strtod(v.c_str(), nullptr);
  }

  void RejectUnknown() const {
    for (const auto& [key, value] : values_) {
      (void)value;
      if (used_.find(key) == used_.end()) Die("unknown flag: --" + key);
    }
  }

  [[noreturn]] static void Die(const std::string& message) {
    std::fprintf(stderr, "error: %s\n", message.c_str());
    std::fprintf(stderr,
                 "usage: next700_run --workload=ycsb|tpcc|tatp|smallbank "
                 "[--cc=SCHEME] [--threads=N]\n"
                 "  [--seconds=S] [--warmup=S] [--partitions=N] "
                 "[--index=hash|btree]\n"
                 "  [--logging=none|value|command] [--log-path=PATH] "
                 "[--log-latency-us=N] [--async-commit]\n"
                 "  YCSB: [--records=N] [--theta=T] [--writes=F] "
                 "[--ops=N] [--rmw]\n"
                 "  TPC-C: [--warehouses=N]   TATP/SmallBank: "
                 "[--records=N]\n");
    std::exit(1);
  }

 private:
  std::map<std::string, std::string> values_;
  std::set<std::string> used_;
};

}  // namespace
}  // namespace next700

int main(int argc, char** argv) {
  using namespace next700;
  Flags flags(argc, argv);

  const std::string workload_name = flags.GetString("workload", "ycsb");
  const int threads = static_cast<int>(flags.GetInt("threads", 4));

  EngineOptions eng;
  eng.cc_scheme = CcSchemeFromName(flags.GetString("cc", "SILO"));
  eng.max_threads = threads;
  eng.num_partitions =
      static_cast<uint32_t>(flags.GetInt("partitions", threads));
  const std::string logging = flags.GetString("logging", "none");
  if (logging == "value") {
    eng.logging = LoggingKind::kValue;
  } else if (logging == "command") {
    eng.logging = LoggingKind::kCommand;
  } else if (logging != "none") {
    Flags::Die("bad --logging: " + logging);
  }
  eng.log_path = flags.GetString("log-path", "/tmp/next700_run.log");
  eng.log_device_latency_us =
      static_cast<uint64_t>(flags.GetInt("log-latency-us", 0));
  eng.sync_commit = flags.GetString("async-commit", "false") != "true";

  std::unique_ptr<Workload> workload;
  if (workload_name == "ycsb") {
    YcsbOptions ycsb;
    ycsb.num_records =
        static_cast<uint64_t>(flags.GetInt("records", 1 << 20));
    ycsb.theta = flags.GetDouble("theta", 0.0);
    ycsb.write_fraction = flags.GetDouble("writes", 0.05);
    ycsb.ops_per_txn = static_cast<int>(flags.GetInt("ops", 16));
    ycsb.read_modify_write = flags.GetString("rmw", "false") == "true";
    ycsb.index_kind = flags.GetString("index", "hash") == "btree"
                          ? IndexKind::kBTree
                          : IndexKind::kHash;
    ycsb.partitioned = eng.cc_scheme == CcScheme::kHstore;
    workload = std::make_unique<YcsbWorkload>(ycsb);
  } else if (workload_name == "tpcc") {
    TpccOptions tpcc;
    tpcc.num_warehouses =
        static_cast<uint32_t>(flags.GetInt("warehouses", threads));
    eng.num_partitions = tpcc.num_warehouses;
    workload = std::make_unique<TpccWorkload>(tpcc);
  } else if (workload_name == "tatp") {
    TatpOptions tatp;
    tatp.num_subscribers =
        static_cast<uint64_t>(flags.GetInt("records", 100000));
    workload = std::make_unique<TatpWorkload>(tatp);
  } else if (workload_name == "smallbank") {
    SmallBankOptions bank;
    bank.num_accounts =
        static_cast<uint64_t>(flags.GetInt("records", 100000));
    bank.theta = flags.GetDouble("theta", 0.0);
    workload = std::make_unique<SmallBankWorkload>(bank);
  } else {
    Flags::Die("bad --workload: " + workload_name);
  }

  DriverOptions driver;
  driver.num_threads = threads;
  driver.measure_seconds = flags.GetDouble("seconds", 2.0);
  driver.warmup_seconds = flags.GetDouble("warmup", 0.25);
  flags.RejectUnknown();

  std::printf("composition: cc=%s threads=%d partitions=%u logging=%s%s\n",
              CcSchemeName(eng.cc_scheme), threads, eng.num_partitions,
              logging.c_str(), eng.sync_commit ? "" : " (async)");
  Engine engine(eng);
  std::printf("loading %s ...\n", workload->name());
  const uint64_t load_start = NowNanos();
  workload->Load(&engine);
  std::printf("loaded in %.2fs; measuring %.1fs on %d workers ...\n",
              static_cast<double>(NowNanos() - load_start) / 1e9,
              driver.measure_seconds, threads);

  const RunStats stats = Driver::Run(&engine, workload.get(), driver);
  std::printf("\nthroughput: %.0f txn/s\n", stats.Throughput());
  std::printf("commits:    %llu\n",
              static_cast<unsigned long long>(stats.commits));
  std::printf("cc aborts:  %llu (ratio %.4f)\n",
              static_cast<unsigned long long>(stats.aborts),
              stats.AbortRatio());
  std::printf("user aborts:%llu\n",
              static_cast<unsigned long long>(stats.user_aborts));
  std::printf("latency:    %s\n", stats.commit_latency_ns.Summary().c_str());
  if (stats.log_bytes > 0) {
    std::printf("log bytes:  %.2f MB\n",
                static_cast<double>(stats.log_bytes) / (1024.0 * 1024.0));
  }
  return 0;
}
