/// next700_run — command-line entry point. Two subcommands:
///
///   run (default)  Composes an engine from flags, loads a workload, runs a
///                  timed measurement in-process, and prints throughput plus
///                  latency percentiles — the "I just want to try a
///                  configuration" path; the bench_* binaries regenerate the
///                  paper's fixed experiment suite.
///   serve          Composes an engine, loads the KV stored-procedure
///                  service, and exposes it over TCP until SIGINT (or
///                  --seconds elapses). Drive it with next700_loadgen.
///                  --role=replica tails a primary's log stream and serves
///                  read-only snapshot transactions; --recover bootstraps
///                  from checkpoint + log instead of a fresh load (also
///                  how a replica is promoted: restart its directories
///                  with --role=primary --recover).
///   io-probe       Reports whether the kernel offers a usable io_uring
///                  (exit 0) or only the epoll fallback (exit 1) — CI
///                  matrix jobs use this to skip uring legs gracefully.
///
/// Examples:
///   next700_run --workload=ycsb --cc=SILO --threads=4 --theta=0.9
///   next700_run run --workload=tpcc --cc=WAIT_DIE --warehouses=4
///       --logging=command --log-dir=/tmp/tpcc.logd
///   next700_run serve --cc=HSTORE --workers=4 --partitions=4 --port=7700
///   next700_run serve --cc=SILO --logging=value --log-sync=fdatasync
///       --log-dir=/tmp/kv.logd
///   next700_run serve --logging=value --log-dir=/tmp/p.logd --port=7700
///       --repl-ack=semisync
///   next700_run serve --role=replica --primary-addr=127.0.0.1:7700
///       --logging=value --log-dir=/tmp/r.logd --port=7701

#include <unistd.h>

#include <algorithm>
#include <cctype>
#include <chrono>
#include <csignal>
#include <cstdio>
#include <cstdlib>
#include <memory>
#include <string>
#include <thread>

#include "io/io_backend.h"
#include "log/checkpoint.h"
#include "log/manifest.h"
#include "repl/replica_applier.h"
#include "server/procs.h"
#include "server/server.h"
#include "shard/shard_router.h"
#include "flags.h"
#include "workload/driver.h"
#include "workload/smallbank.h"
#include "workload/tatp.h"
#include "workload/tpcc.h"
#include "workload/ycsb.h"

namespace next700 {
namespace {

using tools::Flags;

void Usage() {
  std::fprintf(
      stderr,
      "usage: next700_run [run] --workload=ycsb|tpcc|tatp|smallbank "
      "[--cc=SCHEME] [--threads=N]\n"
      "  [--seconds=S] [--warmup=S] [--partitions=N] [--index=hash|btree]\n"
      "  [--logging=none|value|command] [--log-dir=DIR] "
      "[--log-sync=none|fdatasync|odsync]\n"
      "  [--log-segment-mb=N] [--log-latency-us=N] [--async-commit]\n"
      "  [--checkpoint-dir=DIR] [--checkpoint-interval-ms=N] "
      "[--checkpoint-no-truncate]\n"
      "  YCSB: [--records=N] [--theta=T] [--writes=F] [--ops=N] [--rmw]\n"
      "  TPC-C: [--warehouses=N]   TATP/SmallBank: [--records=N]\n"
      "\n"
      "usage: next700_run serve [--cc=SCHEME] [--workers=N] "
      "[--partitions=N]\n"
      "  [--host=ADDR] [--port=P] [--records=N] [--value-size=B] "
      "[--index=hash|btree]\n"
      "  [--logging=none|value|command] [--log-dir=DIR] "
      "[--log-sync=none|fdatasync|odsync]\n"
      "  [--log-segment-mb=N] [--log-latency-us=N] [--async-commit]\n"
      "  [--checkpoint-dir=DIR] [--checkpoint-interval-ms=N] "
      "[--checkpoint-no-truncate]\n"
      "  [--max-inflight=N] [--queue-capacity=N] [--seconds=S]  "
      "(seconds=0: serve until SIGINT)\n"
      "  [--io-backend=auto|uring|epoll]  (network + log submission "
      "backend; uring fails loudly if unsupported)\n"
      "  [--role=primary|replica|shard-router] [--primary-addr=HOST:PORT] "
      "[--repl-ack=async|semisync]\n"
      "  [--recover]  (bootstrap from checkpoint + log; promotion = "
      "--role=primary --recover)\n"
      "  [--shard-id=N --num-shards=N]  (this server owns keys where "
      "key %% num-shards == shard-id)\n"
      "\n"
      "usage: next700_run serve --role=shard-router "
      "--shards=HOST:PORT,HOST:PORT,...\n"
      "  --log-dir=DIR  (coordinator decision log)  [--host=ADDR] "
      "[--port=P]\n"
      "  [--partitions=N]  (the shards' *global* partition count)\n"
      "  [--io-backend=auto|uring|epoll] [--router-loops=N]  (0 = auto: "
      "one event loop per ~2 cores, max 4)\n"
      "  [--vote-timeout-ms=N] [--seconds=S]\n");
}

volatile std::sig_atomic_t g_stop = 0;
void OnSignal(int) { g_stop = 1; }

/// CcSchemeFromName() CHECK-aborts on unknown names; here a typo should
/// print usage instead of a stack trace.
CcScheme ParseCcScheme(Flags* flags) {
  const std::string name = flags->GetString("cc", "SILO");
  std::string upper = name;
  std::transform(upper.begin(), upper.end(), upper.begin(),
                 [](unsigned char c) { return std::toupper(c); });
  if (upper == "OCC") upper = "SILO";
  for (CcScheme scheme : AllCcSchemes()) {
    if (upper == CcSchemeName(scheme)) return scheme;
  }
  flags->Die("bad --cc: " + name);
}

/// Engine-composition flags shared by both subcommands.
EngineOptions ParseEngineOptions(Flags* flags, int threads,
                                 uint32_t default_partitions) {
  EngineOptions eng;
  eng.cc_scheme = ParseCcScheme(flags);
  eng.max_threads = threads;
  eng.num_partitions = static_cast<uint32_t>(
      flags->GetInt("partitions", default_partitions));
  if (eng.num_partitions == 0) flags->Die("--partitions must be >= 1");
  const std::string logging = flags->GetString("logging", "none");
  if (logging == "value") {
    eng.logging = LoggingKind::kValue;
  } else if (logging == "command") {
    eng.logging = LoggingKind::kCommand;
  } else if (logging != "none") {
    flags->Die("bad --logging: " + logging);
  }
  eng.log_dir = flags->GetString("log-dir", "/tmp/next700_run.logd");
  const std::string sync = flags->GetString("log-sync", "none");
  if (sync == "fdatasync") {
    eng.log_sync = LogSyncPolicy::kFdatasync;
  } else if (sync == "odsync") {
    eng.log_sync = LogSyncPolicy::kODsync;
  } else if (sync != "none") {
    flags->Die("bad --log-sync: " + sync);
  }
  eng.log_segment_bytes =
      static_cast<uint64_t>(flags->GetInt("log-segment-mb", 64)) << 20;
  eng.log_device_latency_us =
      static_cast<uint64_t>(flags->GetInt("log-latency-us", 0));
  eng.sync_commit = !flags->GetBool("async-commit", false);
  eng.checkpoint_dir = flags->GetString("checkpoint-dir", "");
  eng.checkpoint_interval_ms =
      static_cast<uint64_t>(flags->GetInt("checkpoint-interval-ms", 0));
  eng.checkpoint_truncates_log =
      !flags->GetBool("checkpoint-no-truncate", false);
  if (!eng.checkpoint_dir.empty() && eng.logging == LoggingKind::kNone) {
    flags->Die("--checkpoint-dir requires --logging=value|command");
  }
  return eng;
}

/// Spawns the interval checkpointer once DDL + bulk load are done (the
/// snapshot scan must not race table creation or CC-free load writes).
void MaybeStartCheckpointer(Engine* engine) {
  if (engine->options().checkpoint_dir.empty()) return;
  engine->StartCheckpointer();
  std::printf("checkpointer: dir=%s interval=%llums truncate=%s\n",
              engine->options().checkpoint_dir.c_str(),
              static_cast<unsigned long long>(
                  engine->options().checkpoint_interval_ms),
              engine->options().checkpoint_truncates_log ? "yes" : "no");
}

io::IoBackendKind ParseIoBackend(Flags* flags) {
  const std::string name = flags->GetString("io-backend", "auto");
  io::IoBackendKind kind;
  if (!io::ParseIoBackendKind(name, &kind)) {
    flags->Die("bad --io-backend: " + name);
  }
  return kind;
}

IndexKind ParseIndexKind(Flags* flags) {
  const std::string index = flags->GetString("index", "hash");
  if (index == "hash") return IndexKind::kHash;
  if (index == "btree") return IndexKind::kBTree;
  flags->Die("bad --index: " + index);
}

/// `serve --role=shard-router`: no engine of its own — a routing tier in
/// front of N `serve --shard-id=I --num-shards=N` processes.
int RunShardRouter(Flags* flags) {
  shard::ShardRouterOptions opt;
  opt.listen_host = flags->GetString("host", "127.0.0.1");
  opt.listen_port = static_cast<uint16_t>(flags->GetInt("port", 0));
  const std::string shards = flags->GetString("shards", "");
  if (shards.empty()) {
    flags->Die("--role=shard-router requires --shards=HOST:PORT,...");
  }
  size_t pos = 0;
  while (pos <= shards.size()) {
    const size_t comma = shards.find(',', pos);
    const size_t end = comma == std::string::npos ? shards.size() : comma;
    if (end > pos) opt.shards.push_back(shards.substr(pos, end - pos));
    if (comma == std::string::npos) break;
    pos = comma + 1;
  }
  opt.num_partitions =
      static_cast<uint32_t>(flags->GetInt("partitions", 8));
  opt.log_dir = flags->GetString("log-dir", "");
  if (opt.log_dir.empty()) {
    flags->Die("--role=shard-router requires --log-dir (decision log)");
  }
  opt.vote_timeout_ms = flags->GetInt("vote-timeout-ms", 5000);
  opt.io_backend = ParseIoBackend(flags);
  opt.num_loops = flags->GetInt("router-loops", 0);
  if (opt.num_loops < 0) flags->Die("--router-loops must be >= 0");
  opt.crash_after_prepares_sent = static_cast<uint64_t>(
      flags->GetInt("crash-after-prepares-sent", 0));
  const double seconds = flags->GetDouble("seconds", 0.0);
  flags->RejectUnknown();

  shard::ShardRouter router(opt);
  const Status started = router.Start();
  if (!started.ok()) {
    std::fprintf(stderr, "error: %s\n", started.ToString().c_str());
    return 1;
  }
  std::printf("listening on %s:%u (shard-router, %u shards, %u loops)\n",
              opt.listen_host.c_str(), router.port(), router.num_shards(),
              router.num_loops());
  std::fflush(stdout);
  if (router.WaitShardsConnected(15000)) {
    std::printf("all %u shards connected\n", router.num_shards());
  } else {
    std::printf("warning: not all shards reachable yet (still retrying)\n");
  }
  std::fflush(stdout);

  std::signal(SIGINT, OnSignal);
  std::signal(SIGTERM, OnSignal);
  const uint64_t deadline_ns =
      seconds > 0 ? NowNanos() + static_cast<uint64_t>(seconds * 1e9) : 0;
  while (!g_stop && (deadline_ns == 0 || NowNanos() < deadline_ns)) {
    std::this_thread::sleep_for(std::chrono::milliseconds(50));
  }
  router.Stop();
  const shard::ShardRouterStats& stats = router.stats();
  std::printf("\nforwarded:            %llu\n",
              static_cast<unsigned long long>(stats.forwarded.load()));
  std::printf("cross-shard commits:  %llu\n",
              static_cast<unsigned long long>(
                  stats.cross_shard_commits.load()));
  std::printf("cross-shard aborts:   %llu (%llu vote timeouts)\n",
              static_cast<unsigned long long>(
                  stats.cross_shard_aborts.load()),
              static_cast<unsigned long long>(stats.vote_timeouts.load()));
  std::printf("in-doubt resolved:    %llu\n",
              static_cast<unsigned long long>(
                  stats.resolved_in_doubt.load()));
  const uint64_t batches = stats.writev_batches.load();
  const uint64_t frames = stats.frames_batched.load();
  std::printf("io syscalls:          %llu\n",
              static_cast<unsigned long long>(router.io_syscalls()));
  std::printf("frames per writev:    %.2f (%llu frames / %llu batches)\n",
              batches > 0 ? static_cast<double>(frames) /
                                static_cast<double>(batches)
                          : 0.0,
              static_cast<unsigned long long>(frames),
              static_cast<unsigned long long>(batches));
  return 0;
}

int RunServe(Flags* flags) {
  if (flags->GetString("role", "primary") == "shard-router") {
    return RunShardRouter(flags);
  }
  const int workers = static_cast<int>(flags->GetInt("workers", 4));
  if (workers < 1) flags->Die("--workers must be >= 1");
  EngineOptions eng = ParseEngineOptions(
      flags, workers,
      /*default_partitions=*/static_cast<uint32_t>(workers));

  server::KvServiceOptions kv;
  kv.num_records = static_cast<uint64_t>(flags->GetInt("records", 100000));
  kv.value_size = static_cast<uint32_t>(flags->GetInt("value-size", 64));
  if (kv.value_size < 8) flags->Die("--value-size must be >= 8");
  kv.index_kind = ParseIndexKind(flags);
  kv.num_shards = static_cast<uint32_t>(flags->GetInt("num-shards", 1));
  if (kv.num_shards == 0) flags->Die("--num-shards must be >= 1");
  kv.shard_id = static_cast<uint32_t>(flags->GetInt("shard-id", 0));
  if (kv.shard_id >= kv.num_shards) {
    flags->Die("--shard-id must be < --num-shards");
  }

  server::ServerOptions srv;
  srv.host = flags->GetString("host", "127.0.0.1");
  srv.port = static_cast<uint16_t>(flags->GetInt("port", 0));
  srv.num_workers = workers;
  srv.max_inflight =
      static_cast<uint32_t>(flags->GetInt("max-inflight", 256));
  srv.queue_capacity =
      static_cast<size_t>(flags->GetInt("queue-capacity", 1024));
  // Crash-fault test hook (see ServerOptions::crash_after_prepares).
  srv.crash_after_prepares = static_cast<uint64_t>(
      flags->GetInt("crash-after-prepares", 0));
  srv.io_backend = ParseIoBackend(flags);
  eng.log_io_backend = srv.io_backend;

  const std::string role = flags->GetString("role", "primary");
  const bool is_replica = role == "replica";
  if (!is_replica && role != "primary") flags->Die("bad --role: " + role);
  const std::string repl_ack = flags->GetString("repl-ack", "async");
  if (repl_ack == "semisync") {
    srv.repl_ack = server::ReplAckMode::kSemisync;
  } else if (repl_ack != "async") {
    flags->Die("bad --repl-ack: " + repl_ack);
  }
  repl::ReplicaApplierOptions applier_opts;
  if (is_replica) {
    if (eng.logging == LoggingKind::kNone) {
      flags->Die("--role=replica requires --logging=value|command "
                 "(the replica keeps its own copy of the stream)");
    }
    if (!eng.checkpoint_dir.empty()) {
      flags->Die("--role=replica does not support --checkpoint-dir "
                 "(the snapshot gate cannot see the applier's raw writes)");
    }
    const std::string addr = flags->GetString("primary-addr", "");
    const size_t colon = addr.rfind(':');
    const long addr_port =
        colon == std::string::npos
            ? 0
            : std::strtol(addr.c_str() + colon + 1, nullptr, 10);
    if (colon == std::string::npos || colon == 0 || addr_port <= 0 ||
        addr_port > 65535) {
      flags->Die("--role=replica requires --primary-addr=HOST:PORT");
    }
    applier_opts.primary_host = addr.substr(0, colon);
    applier_opts.primary_port = static_cast<uint16_t>(addr_port);
  }
  const bool recover = flags->GetBool("recover", false);
  if (recover && eng.logging == LoggingKind::kNone) {
    flags->Die("--recover requires --logging=value|command");
  }
  const double seconds = flags->GetDouble("seconds", 0.0);
  flags->RejectUnknown();

  std::printf("composition: cc=%s workers=%d partitions=%u logging=%s%s "
              "role=%s\n",
              CcSchemeName(eng.cc_scheme), workers, eng.num_partitions,
              flags->GetString("logging", "none").c_str(),
              eng.sync_commit ? "" : " (async)", role.c_str());
  Engine engine(eng);
  const uint64_t load_start = NowNanos();
  // With --recover, rows come from the MANIFEST-named checkpoint (the
  // loader must leave the engine empty) or, when no checkpoint was ever
  // installed, from the deterministic seed load that full replay then
  // overlays — the same seed a fresh primary/replica pair starts from.
  const bool have_manifest =
      !eng.checkpoint_dir.empty() &&
      ::access(ManifestPath(eng.checkpoint_dir).c_str(), F_OK) == 0;
  kv.load_rows = !(recover && have_manifest);
  const uint64_t loaded = server::RegisterKvService(&engine, kv);
  std::printf("loaded %llu kv rows in %.2fs\n",
              static_cast<unsigned long long>(loaded),
              static_cast<double>(NowNanos() - load_start) / 1e9);
  if (recover) {
    RecoverOutcome outcome;
    const Status recovered = RecoverEngine(
        &engine, eng.checkpoint_dir, eng.log_dir, /*rebuilder=*/nullptr,
        &outcome);
    if (!recovered.ok()) {
      std::fprintf(stderr, "recovery failed: %s\n",
                   recovered.ToString().c_str());
      return 1;
    }
    std::printf("recovered via %s: %llu txns replayed, durable_lsn=%llu\n",
                outcome.used_checkpoint ? "checkpoint+suffix" : "full replay",
                static_cast<unsigned long long>(outcome.log.txns_replayed),
                static_cast<unsigned long long>(
                    engine.log_manager()->durable_lsn()));
    if (engine.has_in_doubt()) {
      std::printf("in-doubt 2PC branches: %zu (refusing requests until the "
                  "coordinator resolves them)\n",
                  engine.InDoubtGtids().size());
    }
  }
  MaybeStartCheckpointer(&engine);

  std::unique_ptr<repl::ReplicaApplier> applier;
  if (is_replica) {
    applier = std::make_unique<repl::ReplicaApplier>(&engine, applier_opts);
    const Status applier_started = applier->Start();
    if (!applier_started.ok()) {
      std::fprintf(stderr, "error: %s\n",
                   applier_started.ToString().c_str());
      return 1;
    }
    srv.snapshot_source = applier.get();
    std::printf("tailing primary at %s:%u from lsn %llu\n",
                applier_opts.primary_host.c_str(),
                applier_opts.primary_port,
                static_cast<unsigned long long>(applier->applied_lsn()));
  }

  server::Server srv_instance(&engine, srv);
  const Status started = srv_instance.Start();
  if (!started.ok()) {
    std::fprintf(stderr, "error: %s\n", started.ToString().c_str());
    return 1;
  }
  std::printf("listening on %s:%u (io backend: %s, log device: %s)\n",
              srv.host.c_str(), srv_instance.port(),
              srv_instance.io_backend_name(),
              engine.log_manager() != nullptr
                  ? engine.log_manager()->io_backend_name()
                  : "none");
  std::fflush(stdout);

  std::signal(SIGINT, OnSignal);
  std::signal(SIGTERM, OnSignal);
  const uint64_t deadline_ns =
      seconds > 0 ? NowNanos() + static_cast<uint64_t>(seconds * 1e9) : 0;
  while (!g_stop && (deadline_ns == 0 || NowNanos() < deadline_ns)) {
    std::this_thread::sleep_for(std::chrono::milliseconds(50));
  }
  // Snapshot the network-path io counters before Stop() tears the backend
  // down.
  const char* io_name = srv_instance.io_backend_name();
  uint64_t io_reads = 0, io_writes = 0, io_accepts = 0, io_submissions = 0,
           io_syscalls = 0, io_waits = 0;
  if (const io::IoCounters* io = srv_instance.io_counters()) {
    io_reads = io->read_ops.load();
    io_writes = io->write_ops.load();
    io_accepts = io->accept_ops.load();
    io_submissions = io->submissions.load();
    io_syscalls = io->syscalls.load();
    io_waits = io->waits.load();
  }
  srv_instance.Stop();
  if (applier != nullptr) applier->Stop();

  const server::ServerStats& stats = srv_instance.stats();
  std::printf("\nconnections accepted: %llu\n",
              static_cast<unsigned long long>(
                  stats.connections_accepted.load()));
  std::printf("requests dispatched:  %llu\n",
              static_cast<unsigned long long>(
                  stats.requests_dispatched.load()));
  std::printf("responses sent:       %llu\n",
              static_cast<unsigned long long>(stats.responses_sent.load()));
  std::printf("protocol errors:      %llu\n",
              static_cast<unsigned long long>(stats.protocol_errors.load()));
  std::printf("admission rejects:    %llu\n",
              static_cast<unsigned long long>(
                  stats.admission_rejects.load()));
  std::printf("replies held durable: %llu\n",
              static_cast<unsigned long long>(
                  stats.replies_held_durable.load()));
  std::printf("io (%s): %llu reads, %llu writes, %llu accepts, "
              "%llu submissions over %llu syscalls (%llu waits)\n",
              io_name, static_cast<unsigned long long>(io_reads),
              static_cast<unsigned long long>(io_writes),
              static_cast<unsigned long long>(io_accepts),
              static_cast<unsigned long long>(io_submissions),
              static_cast<unsigned long long>(io_syscalls),
              static_cast<unsigned long long>(io_waits));
  std::printf("reply batching:       %llu frames over %llu writev "
              "(%.1f frames/writev)\n",
              static_cast<unsigned long long>(stats.frames_batched.load()),
              static_cast<unsigned long long>(stats.writev_batches.load()),
              stats.writev_batches.load() > 0
                  ? static_cast<double>(stats.frames_batched.load()) /
                        static_cast<double>(stats.writev_batches.load())
                  : 0.0);
  if (engine.log_manager() != nullptr) {
    std::printf("log device writes:    %llu (%s)\n",
                static_cast<unsigned long long>(
                    engine.log_manager()->write_syscalls()),
                engine.log_manager()->io_backend_name());
  }
  if (stats.repl_batches_shipped.load() > 0 ||
      stats.repl_acks_received.load() > 0) {
    std::printf("repl batches shipped: %llu (%llu acks, %llu semisync "
                "degrades)\n",
                static_cast<unsigned long long>(
                    stats.repl_batches_shipped.load()),
                static_cast<unsigned long long>(
                    stats.repl_acks_received.load()),
                static_cast<unsigned long long>(
                    stats.semisync_degraded.load()));
  }
  if (applier != nullptr) {
    std::printf("replica applied:      lsn=%llu (%llu batches, %llu txns, "
                "%llu reconnects, lag=%llu bytes)\n",
                static_cast<unsigned long long>(applier->applied_lsn()),
                static_cast<unsigned long long>(applier->batches_applied()),
                static_cast<unsigned long long>(applier->txns_applied()),
                static_cast<unsigned long long>(applier->reconnects()),
                static_cast<unsigned long long>(applier->lag_bytes()));
    const Status stream = applier->stream_status();
    if (!stream.ok()) {
      std::printf("replica stream error: %s\n", stream.ToString().c_str());
    }
  }
  if (engine.checkpointer() != nullptr) {
    std::printf("checkpoints taken:    %llu\n",
                static_cast<unsigned long long>(
                    engine.checkpointer()->checkpoints_taken()));
    const Status bg = engine.checkpointer()->background_status();
    if (!bg.ok()) {
      std::printf("checkpointer error:   %s\n", bg.ToString().c_str());
    }
  }
  return 0;
}

int RunBench(Flags* flags) {
  const std::string workload_name = flags->GetString("workload", "ycsb");
  const int threads = static_cast<int>(flags->GetInt("threads", 4));
  if (threads < 1) flags->Die("--threads must be >= 1");

  EngineOptions eng = ParseEngineOptions(
      flags, threads, /*default_partitions=*/static_cast<uint32_t>(threads));

  std::unique_ptr<Workload> workload;
  if (workload_name == "ycsb") {
    YcsbOptions ycsb;
    ycsb.num_records =
        static_cast<uint64_t>(flags->GetInt("records", 1 << 20));
    ycsb.theta = flags->GetDouble("theta", 0.0);
    ycsb.write_fraction = flags->GetDouble("writes", 0.05);
    ycsb.ops_per_txn = static_cast<int>(flags->GetInt("ops", 16));
    ycsb.read_modify_write = flags->GetBool("rmw", false);
    ycsb.index_kind = ParseIndexKind(flags);
    ycsb.partitioned = eng.cc_scheme == CcScheme::kHstore;
    workload = std::make_unique<YcsbWorkload>(ycsb);
  } else if (workload_name == "tpcc") {
    TpccOptions tpcc;
    tpcc.num_warehouses =
        static_cast<uint32_t>(flags->GetInt("warehouses", threads));
    eng.num_partitions = tpcc.num_warehouses;
    workload = std::make_unique<TpccWorkload>(tpcc);
  } else if (workload_name == "tatp") {
    TatpOptions tatp;
    tatp.num_subscribers =
        static_cast<uint64_t>(flags->GetInt("records", 100000));
    workload = std::make_unique<TatpWorkload>(tatp);
  } else if (workload_name == "smallbank") {
    SmallBankOptions bank;
    bank.num_accounts =
        static_cast<uint64_t>(flags->GetInt("records", 100000));
    bank.theta = flags->GetDouble("theta", 0.0);
    workload = std::make_unique<SmallBankWorkload>(bank);
  } else {
    flags->Die("bad --workload: " + workload_name);
  }

  DriverOptions driver;
  driver.num_threads = threads;
  driver.measure_seconds = flags->GetDouble("seconds", 2.0);
  driver.warmup_seconds = flags->GetDouble("warmup", 0.25);
  flags->RejectUnknown();

  std::printf("composition: cc=%s threads=%d partitions=%u logging=%s%s\n",
              CcSchemeName(eng.cc_scheme), threads, eng.num_partitions,
              flags->GetString("logging", "none").c_str(),
              eng.sync_commit ? "" : " (async)");
  Engine engine(eng);
  std::printf("loading %s ...\n", workload->name());
  const uint64_t load_start = NowNanos();
  workload->Load(&engine);
  std::printf("loaded in %.2fs; measuring %.1fs on %d workers ...\n",
              static_cast<double>(NowNanos() - load_start) / 1e9,
              driver.measure_seconds, threads);
  MaybeStartCheckpointer(&engine);

  const RunStats stats = Driver::Run(&engine, workload.get(), driver);
  std::printf("\nthroughput: %.0f txn/s\n", stats.Throughput());
  std::printf("commits:    %llu\n",
              static_cast<unsigned long long>(stats.commits));
  std::printf("cc aborts:  %llu (ratio %.4f)\n",
              static_cast<unsigned long long>(stats.aborts),
              stats.AbortRatio());
  std::printf("user aborts:%llu\n",
              static_cast<unsigned long long>(stats.user_aborts));
  std::printf("latency:    %s\n", stats.commit_latency_ns.Summary().c_str());
  if (stats.log_bytes > 0) {
    std::printf("log bytes:  %.2f MB\n",
                static_cast<double>(stats.log_bytes) / (1024.0 * 1024.0));
  }
  if (engine.checkpointer() != nullptr) {
    std::printf("checkpoints:%llu\n",
                static_cast<unsigned long long>(
                    engine.checkpointer()->checkpoints_taken()));
  }
  return 0;
}

/// Exit 0 when the kernel offers a ring the backends can actually use
/// (setup + the features the implementation requires), 1 otherwise. The
/// CI io-backend matrix keys its uring leg off this.
int RunIoProbe(Flags* flags) {
  flags->RejectUnknown();
  if (io::UringSupported()) {
    std::printf("io_uring: supported\n");
    return 0;
  }
  std::printf("io_uring: unsupported (epoll fallback only)\n");
  return 1;
}

}  // namespace
}  // namespace next700

int main(int argc, char** argv) {
  using namespace next700;
  // A peer that disconnects mid-write must surface as EPIPE on that
  // connection, never kill the whole server.
  std::signal(SIGPIPE, SIG_IGN);
  Flags flags(argc, argv, Usage, /*allow_subcommand=*/true);
  const std::string& sub = flags.subcommand();
  if (sub == "serve") return RunServe(&flags);
  if (sub == "io-probe") return RunIoProbe(&flags);
  if (sub.empty() || sub == "run") return RunBench(&flags);
  flags.Die("unknown subcommand: " + sub);
}
