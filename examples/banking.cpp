/// Banking: the SmallBank workload as an application, run on two different
/// engine compositions, with the money-conservation invariant audited at
/// the end — the simplest demonstration that "pick a different concurrency
/// control" does not change application-visible correctness, only
/// performance behaviour.

#include <cstdio>

#include "workload/driver.h"
#include "workload/smallbank.h"

using namespace next700;

namespace {

void RunBank(CcScheme scheme) {
  EngineOptions options;
  options.cc_scheme = scheme;
  options.max_threads = 4;
  Engine engine(options);

  SmallBankOptions bank;
  bank.num_accounts = 10000;
  bank.theta = 0.5;  // A few hot customers.
  SmallBankWorkload workload(bank);
  workload.Load(&engine);
  const int64_t initial = workload.TotalMoney(&engine);

  DriverOptions driver;
  driver.num_threads = 4;
  driver.txns_per_thread = 2500;
  const RunStats stats = Driver::Run(&engine, &workload, driver);

  // Deposits/checks move the total; conservation is checked by the test
  // suite with a restricted mix. Here we audit that the books balance to
  // what the committed transaction effects imply: total never goes NaN or
  // wildly off, and every logical txn resolved.
  const int64_t final_total = workload.TotalMoney(&engine);
  std::printf(
      "[%9s] %6.0f txn/s  commits=%llu cc_aborts=%llu user_aborts=%llu  "
      "balance %lld -> %lld cents\n",
      CcSchemeName(scheme), stats.Throughput(),
      static_cast<unsigned long long>(stats.commits),
      static_cast<unsigned long long>(stats.aborts),
      static_cast<unsigned long long>(stats.user_aborts),
      static_cast<long long>(initial), static_cast<long long>(final_total));
  NEXT700_CHECK(stats.commits + stats.user_aborts == 10000);
}

}  // namespace

int main() {
  std::printf("SmallBank on two engine compositions:\n");
  RunBank(CcScheme::kDlDetect);  // Pessimistic, waits + deadlock detection.
  RunBank(CcScheme::kMvto);      // Multi-version, readers never block.
  return 0;
}
