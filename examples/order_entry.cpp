/// Order entry: the full TPC-C application (all five transaction profiles,
/// nine tables) with durable command logging and crash recovery. Runs the
/// mix, audits the TPC-C consistency conditions, then simulates a crash by
/// replaying the command log into a second, freshly loaded engine and
/// audits that one too.

#include <cstdio>

#include "log/recovery.h"
#include "workload/driver.h"
#include "workload/tpcc.h"

using namespace next700;

namespace {

TpccOptions Scale() {
  TpccOptions options;
  options.num_warehouses = 2;
  options.districts_per_warehouse = 10;
  options.customers_per_district = 500;
  options.num_items = 2000;
  options.initial_orders_per_district = 200;
  return options;
}

}  // namespace

int main() {
  const char* log_dir = "/tmp/next700_order_entry.logd";
  RemoveLogDir(log_dir);  // Logs accumulate across runs; start clean.

  uint64_t committed = 0;
  {
    EngineOptions eng;
    eng.cc_scheme = CcScheme::kWaitDie;
    eng.max_threads = 2;
    eng.num_partitions = 2;
    eng.logging = LoggingKind::kCommand;
    eng.log_dir = log_dir;
    eng.log_sync = LogSyncPolicy::kFdatasync;
    Engine engine(eng);
    TpccWorkload workload(Scale());
    workload.Load(&engine);
    std::printf("loaded TPC-C: %llu customers, %llu orders, %llu stock rows\n",
                static_cast<unsigned long long>(
                    workload.customer_->ApproxRowCount()),
                static_cast<unsigned long long>(
                    workload.order_->ApproxRowCount()),
                static_cast<unsigned long long>(
                    workload.stock_->ApproxRowCount()));

    DriverOptions driver;
    driver.num_threads = 2;
    driver.txns_per_thread = 1500;
    const RunStats stats = Driver::Run(&engine, &workload, driver);
    committed = stats.commits;
    std::printf("ran mix: %.0f txn/s, commits=%llu, user rollbacks=%llu\n",
                stats.Throughput(),
                static_cast<unsigned long long>(stats.commits),
                static_cast<unsigned long long>(stats.user_aborts));
    const Status audit = workload.CheckConsistency(&engine);
    std::printf("consistency audit (live engine): %s\n",
                audit.ToString().c_str());
    NEXT700_CHECK(audit.ok());
  }  // "Crash": engine destroyed; only the command log survives.

  {
    EngineOptions eng;
    eng.cc_scheme = CcScheme::kWaitDie;
    eng.max_threads = 2;
    eng.num_partitions = 2;
    Engine engine(eng);
    TpccWorkload workload(Scale());
    workload.Load(&engine);  // Deterministic initial state (the checkpoint).
    RecoveryManager recovery(&engine);
    RecoveryStats stats;
    const Status replay = recovery.Replay(log_dir, &stats);
    NEXT700_CHECK(replay.ok());
    std::printf(
        "recovered %llu of %llu committed txns in %.3fs from %0.2f MB "
        "(read-only txns write no log records)\n",
        static_cast<unsigned long long>(stats.txns_replayed),
        static_cast<unsigned long long>(committed), stats.elapsed_seconds,
        static_cast<double>(stats.bytes_read) / (1024 * 1024));
    const Status audit = workload.CheckConsistency(&engine);
    std::printf("consistency audit (recovered engine): %s\n",
                audit.ToString().c_str());
    NEXT700_CHECK(audit.ok());
  }
  RemoveLogDir(log_dir);
  return 0;
}
