/// KV service: run the networked transaction service and a client in one
/// process.
///
/// The server is just another composition axis: the same `Engine` the
/// embedded examples drive directly here sits behind an epoll front-end
/// with a binary wire protocol, pipelined dispatch, and group-commit-gated
/// replies. This example starts the service on an ephemeral loopback port,
/// issues pipelined requests through the client library, and shows the
/// durability contract (a reply's commit LSN is never ahead of the log's
/// durable LSN).

#include <cstdio>

#include "server/client.h"
#include "server/procs.h"
#include "server/server.h"

using namespace next700;
using namespace next700::server;

int main() {
  // 1. Compose an engine with value logging and a real fdatasync barrier
  //    so commits are durable.
  EngineOptions options;
  options.cc_scheme = CcScheme::kOcc;
  options.max_threads = 2;
  options.logging = LoggingKind::kValue;
  options.log_dir = "/tmp/next700_kv_service.logd";
  options.log_sync = LogSyncPolicy::kFdatasync;
  RemoveLogDir(options.log_dir);  // Logs accumulate across runs.
  Engine engine(options);

  // 2. Load the KV stored-procedure suite and start the server.
  KvServiceOptions kv;
  kv.num_records = 1000;
  RegisterKvService(&engine, kv);
  ServerOptions srv;
  srv.num_workers = 2;
  Server server(&engine, srv);
  NEXT700_CHECK(server.Start().ok());
  std::printf("serving on 127.0.0.1:%u\n", server.port());

  // 3. Connect and pipeline a burst of read-modify-writes: Send() never
  //    waits, Recv() returns replies in request order.
  Client client;
  NEXT700_CHECK(client.Connect("127.0.0.1", server.port()).ok());
  for (uint64_t i = 0; i < 8; ++i) {
    Request request;
    request.request_id = i;
    request.proc_id = kKvRmw;
    WireWriter args(&request.args);
    args.PutU16(1);
    args.PutU64(i % kv.num_records);
    NEXT700_CHECK(client.Send(request).ok());
  }
  for (uint64_t i = 0; i < 8; ++i) {
    Response response;
    NEXT700_CHECK(client.Recv(&response).ok());
    NEXT700_CHECK(response.request_id == i);
    NEXT700_CHECK(response.status == StatusCode::kOk);
    // The group-commit contract: the reply was held until this LSN flushed.
    NEXT700_CHECK(response.commit_lsn <=
                  engine.log_manager()->durable_lsn());
    std::printf("rmw #%llu committed at lsn %llu (durable)\n",
                static_cast<unsigned long long>(i),
                static_cast<unsigned long long>(response.commit_lsn));
  }

  // 4. A read through the wire returns the row bytes as the payload.
  Request get;
  get.request_id = 100;
  get.proc_id = kKvGet;
  WireWriter args(&get.args);
  args.PutU64(3);
  Response response;
  NEXT700_CHECK(client.Call(get, &response).ok());
  std::printf("get key 3: %zu-byte row, counter=%llu\n",
              response.payload.size(),
              static_cast<unsigned long long>(
                  *reinterpret_cast<const uint64_t*>(
                      response.payload.data())));

  server.Stop();
  std::printf("done\n");
  return 0;
}
