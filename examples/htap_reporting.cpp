/// HTAP reporting: live analytical queries over an OLTP store. Two updater
/// threads hammer an inventory table while a reporting thread repeatedly
/// computes a full-table aggregate inside a transaction. On the
/// multi-version engine the report reads a consistent snapshot and never
/// blocks the writers — the "fresh analytics without interference" scenario
/// from the keynote.

#include <atomic>
#include <cstdio>
#include <thread>

#include "txn/engine.h"
#include "workload/workload.h"

using namespace next700;

namespace {
constexpr uint64_t kItems = 20000;
constexpr int kQty = 0;
constexpr int kSold = 1;
}  // namespace

int main() {
  EngineOptions options;
  options.cc_scheme = CcScheme::kMvto;  // Snapshot reads for free.
  options.max_threads = 3;
  Engine engine(options);

  Schema schema;
  schema.AddInt64("quantity");
  schema.AddInt64("sold");
  Table* table = engine.CreateTable("inventory", std::move(schema));
  Index* pk = engine.CreateIndex("inventory_pk", table, IndexKind::kBTree,
                                 kItems);
  const Schema& s = table->schema();
  {
    std::vector<uint8_t> row(s.row_size());
    for (uint64_t id = 0; id < kItems; ++id) {
      s.SetInt64(row.data(), kQty, 50);
      s.SetInt64(row.data(), kSold, 0);
      NEXT700_CHECK(pk->Insert(id, engine.LoadRow(table, 0, id, row.data()))
                        .ok());
    }
  }

  std::atomic<bool> stop{false};
  std::atomic<uint64_t> sales{0};

  // OLTP: each sale decrements quantity and increments sold — the row-level
  // invariant quantity + sold == 50 must hold in every snapshot.
  auto seller = [&](int thread_id) {
    Rng rng(static_cast<uint64_t>(thread_id));
    while (!stop.load(std::memory_order_acquire)) {
      const uint64_t id = rng.NextUint64(kItems / 20);  // Hot products.
      (void)RunWithRetry(&rng, [&]() -> Status {
        TxnContext* txn = engine.Begin(thread_id);
        std::vector<uint8_t> row(s.row_size());
        Status st = engine.Read(txn, pk, id, row.data());
        if (st.ok() && s.GetInt64(row.data(), kQty) > 0) {
          s.SetInt64(row.data(), kQty, s.GetInt64(row.data(), kQty) - 1);
          s.SetInt64(row.data(), kSold, s.GetInt64(row.data(), kSold) + 1);
          st = engine.Update(txn, pk, id, row.data());
        }
        if (st.ok()) st = engine.Commit(txn);
        if (!st.ok()) {
          engine.Abort(txn);
          return st;
        }
        ++sales;
        return Status::OK();
      });
    }
  };
  std::thread t1(seller, 1);
  std::thread t2(seller, 2);

  // OLAP: five consecutive full-table reports, each one transaction.
  for (int report = 1; report <= 5; ++report) {
    Rng rng(99);
    int64_t total_qty = 0, total_sold = 0;
    const Status st = RunWithRetry(&rng, [&]() -> Status {
      total_qty = total_sold = 0;
      TxnContext* txn = engine.Begin(0);
      std::vector<Row*> rows;
      Status st2 = engine.Scan(txn, pk, 0, kItems - 1, 0, &rows);
      std::vector<uint8_t> buf(s.row_size());
      for (Row* row : rows) {
        if (!st2.ok()) break;
        st2 = engine.ReadRow(txn, row, buf.data());
        if (st2.ok()) {
          total_qty += s.GetInt64(buf.data(), kQty);
          total_sold += s.GetInt64(buf.data(), kSold);
        }
      }
      if (st2.ok()) st2 = engine.Commit(txn);
      if (!st2.ok()) engine.Abort(txn);
      return st2;
    });
    NEXT700_CHECK(st.ok());
    // Snapshot consistency: the report's totals balance exactly even while
    // writers keep committing underneath it.
    NEXT700_CHECK(total_qty + total_sold ==
                  static_cast<int64_t>(kItems) * 50);
    std::printf("report %d: stock=%lld sold=%lld (consistent snapshot, "
                "%llu sales committed so far)\n",
                report, static_cast<long long>(total_qty),
                static_cast<long long>(total_sold),
                static_cast<unsigned long long>(sales.load()));
  }

  stop.store(true, std::memory_order_release);
  t1.join();
  t2.join();
  std::printf("done: %llu sales alongside 5 consistent full-table reports\n",
              static_cast<unsigned long long>(sales.load()));
  return 0;
}
