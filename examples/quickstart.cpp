/// Quickstart: assemble an engine, define a table, and run transactions.
///
/// The engine is a *composition*: pick a concurrency-control scheme, an
/// index structure, and (optionally) a logging mode, and the same
/// application code runs unchanged on any of them. This example builds a
/// Silo-style optimistic engine, inserts a few rows, updates them
/// transactionally, and demonstrates conflict-abort handling.

#include <cstdio>

#include "txn/engine.h"
#include "workload/workload.h"

using namespace next700;

int main() {
  // 1. Compose an engine. Swap cc_scheme for any of the eight schemes —
  //    NO_WAIT, WAIT_DIE, DL_DETECT, TIMESTAMP, SILO (kOcc), TICTOC, MVTO,
  //    HSTORE — and nothing below changes.
  EngineOptions options;
  options.cc_scheme = CcScheme::kOcc;
  options.max_threads = 2;
  Engine engine(options);

  // 2. Define a schema and an index (DDL is plain setup code).
  Schema schema;
  const int kName = schema.AddChar("name", 16);
  const int kScore = schema.AddInt64("score");
  Table* table = engine.CreateTable("players", std::move(schema));
  Index* by_id = engine.CreateIndex("players_pk", table, IndexKind::kHash,
                                    1024);
  const Schema& s = table->schema();

  // 3. Insert rows in a transaction.
  {
    TxnContext* txn = engine.Begin(/*thread_id=*/0);
    std::vector<uint8_t> row(s.row_size());
    const char* names[] = {"ada", "grace", "edsger"};
    for (uint64_t id = 0; id < 3; ++id) {
      s.SetChar(row.data(), kName, names[id]);
      s.SetInt64(row.data(), kScore, 100 * static_cast<int64_t>(id + 1));
      Result<Row*> inserted = engine.Insert(txn, table, 0, id, row.data());
      NEXT700_CHECK(inserted.ok());
      engine.AddIndexInsert(txn, by_id, id, inserted.value());
    }
    NEXT700_CHECK(engine.Commit(txn).ok());
    std::printf("inserted 3 players\n");
  }

  // 4. Read-modify-write with retry-on-abort (the universal client loop).
  Rng rng(1);
  const Status status = RunWithRetry(&rng, [&]() -> Status {
    TxnContext* txn = engine.Begin(0);
    std::vector<uint8_t> row(s.row_size());
    Status st = engine.Read(txn, by_id, 1, row.data());
    if (st.ok()) {
      s.SetInt64(row.data(), kScore, s.GetInt64(row.data(), kScore) + 42);
      st = engine.Update(txn, by_id, 1, row.data());
    }
    if (st.ok()) st = engine.Commit(txn);
    if (!st.ok()) engine.Abort(txn);
    return st;
  });
  NEXT700_CHECK(status.ok());

  // 5. Read it back.
  {
    TxnContext* txn = engine.Begin(0);
    std::vector<uint8_t> row(s.row_size());
    NEXT700_CHECK(engine.Read(txn, by_id, 1, row.data()).ok());
    std::printf("player %s now has score %lld\n",
                std::string(s.GetChar(row.data(), kName)).c_str(),
                static_cast<long long>(s.GetInt64(row.data(), kScore)));
    NEXT700_CHECK(engine.Commit(txn).ok());
  }

  const RunStats stats = engine.AggregateStats();
  std::printf("engine [%s]: %s\n", CcSchemeName(options.cc_scheme),
              stats.ToString().c_str());
  return 0;
}
